"""Built-in scenario families: the deployment-diversity experiment sets.

A *family* is a named, scale-aware list of :class:`ScenarioSpec` variants
that differ along one deployment axis — the declarative successors of the
hand-wired experiment modules:

* ``incremental-deployment`` — §3.4's adoption story: the SCION fraction
  of endpoint ASes sweeps 25% → 100%, the remainder is the BGP rump
  behind SIG gateways; traffic overlay measures what users get at each
  stage.
* ``ixp-models`` — §3.5 / Figure 4: the same IXP membership lowered as a
  transparent big-switch peering mesh versus an exposed multi-site
  topology (with a backup inter-site link), under identical traffic.
* ``sig-legacy`` — SIG-heavy operation: the fraction of SCION endpoints
  whose hosts stay legacy-IP behind carrier-grade SIGs sweeps upward;
  the SIG encapsulation counters show the gateway load.
* ``hijack-isolation`` — the BGP-hijack versus ISD-trust-isolation
  contrast: a core AS originates a victim's prefix from another ISD
  (isolation contains it) and from the victim's own ISD (the bounded
  worst case).
* ``isd-trust-split`` — the same infrastructure carved into 1, 2 or 4
  isolation domains, under an identical fault overlay (and a cross-ISD
  hijack where one exists), measuring what trust partitioning costs and
  buys.

Every family sizes itself from the experiment scale presets
(test/bench/paper) like :data:`repro.experiments.traffic.WORKLOADS`, and
every variant is a plain spec — compile one with
:func:`repro.scenario.compiler.compile_scenario`, or run a whole family
via ``python -m repro.experiments scenarios --family <name>``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Tuple

from .spec import (
    DeploymentSpec,
    FaultOverlaySpec,
    HijackSpec,
    IsdLayoutSpec,
    IXPSpec,
    ScenarioSpec,
    SigSpec,
    SubstrateSpec,
    TrafficOverlaySpec,
)

__all__ = [
    "FAMILIES",
    "SMOKE_FAMILY",
    "family_names",
    "build_family",
]

#: The family CI smokes and the jobs-equivalence test runs: no traffic or
#: fault overlay, so it is the cheapest end-to-end path.
SMOKE_FAMILY = "hijack-isolation"

#: Per-scale sizing: substrate/core/ISD shape and overlay weights.
_SIZING: Dict[str, Dict[str, float]] = {
    "test": dict(
        ases=48, tier1=6, core=8, isds=2, leaves=2,
        flows=6, ticks=4, capacity=4e6,
        schedules=2, horizon=20, pairs=8,
    ),
    "mini": dict(
        ases=40, tier1=5, core=6, isds=2, leaves=2,
        flows=4, ticks=3, capacity=4e6,
        schedules=1, horizon=20, pairs=6,
    ),
    "bench": dict(
        ases=150, tier1=8, core=16, isds=4, leaves=3,
        flows=20, ticks=10, capacity=20e6,
        schedules=4, horizon=20, pairs=20,
    ),
    "paper": dict(
        ases=2000, tier1=25, core=100, isds=10, leaves=3,
        flows=60, ticks=24, capacity=100e6,
        schedules=8, horizon=20, pairs=100,
    ),
}


def _sizing(scale_name: str) -> Dict[str, float]:
    return _SIZING.get(scale_name, _SIZING["bench"])


def _base(name: str, size: Dict[str, float]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=7,
        substrate=SubstrateSpec(
            ases=int(size["ases"]), tier1=int(size["tier1"])
        ),
        isds=IsdLayoutSpec(
            core_ases=int(size["core"]),
            num_isds=int(size["isds"]),
            leaves_per_core=int(size["leaves"]),
        ),
    )


def _traffic(size: Dict[str, float]) -> TrafficOverlaySpec:
    return TrafficOverlaySpec(
        enabled=True,
        flows_per_tick=int(size["flows"]),
        ticks=int(size["ticks"]),
        link_capacity_bps=float(size["capacity"]),
    )


def _incremental_deployment(scale_name: str) -> List[ScenarioSpec]:
    size = _sizing(scale_name)
    return [
        replace(
            _base(f"incremental-{int(fraction * 100)}", size),
            deployment=DeploymentSpec(scion_fraction=fraction),
            traffic=_traffic(size),
        )
        for fraction in (0.25, 0.5, 0.75, 1.0)
    ]


def _ixp_models(scale_name: str) -> List[ScenarioSpec]:
    size = _sizing(scale_name)
    member_count = min(4, int(size["core"]) // 2)
    return [
        replace(
            _base("ixp-big-switch", size),
            ixps=(
                IXPSpec(
                    name="ix0", mode="big-switch",
                    member_count=member_count,
                ),
            ),
            traffic=_traffic(size),
        ),
        replace(
            _base("ixp-exposed", size),
            ixps=(
                IXPSpec(
                    name="ix0", mode="exposed",
                    member_count=member_count,
                    sites=2, isd=1, redundant_pairs=((0, 1),),
                ),
            ),
            traffic=_traffic(size),
        ),
    ]


def _sig_legacy(scale_name: str) -> List[ScenarioSpec]:
    size = _sizing(scale_name)
    return [
        replace(
            _base(f"sig-legacy-{int(fraction * 100)}", size),
            deployment=DeploymentSpec(scion_fraction=0.75),
            sig=SigSpec(legacy_fraction=fraction),
            traffic=_traffic(size),
        )
        for fraction in (0.2, 0.5, 0.8)
    ]


def _hijack_isolation(scale_name: str) -> List[ScenarioSpec]:
    size = _sizing(scale_name)
    return [
        replace(
            _base("hijack-cross-isd", size),
            hijack=HijackSpec(enabled=True, victim_isd=1, attacker_isd=2),
        ),
        replace(
            _base("hijack-same-isd", size),
            hijack=HijackSpec(enabled=True, victim_isd=1, attacker_isd=1),
        ),
    ]


def _isd_trust_split(scale_name: str) -> List[ScenarioSpec]:
    size = _sizing(scale_name)
    specs = []
    for num_isds in (1, 2, 4):
        if num_isds > int(size["core"]):
            continue
        spec = replace(
            _base(f"trust-split-{num_isds}isd", size),
            isds=IsdLayoutSpec(
                core_ases=int(size["core"]),
                num_isds=num_isds,
                leaves_per_core=int(size["leaves"]),
            ),
            faults=FaultOverlaySpec(
                enabled=True,
                num_schedules=int(size["schedules"]),
                horizon=int(size["horizon"]),
                num_pairs=int(size["pairs"]),
            ),
        )
        if num_isds >= 2:
            spec = replace(
                spec,
                hijack=HijackSpec(
                    enabled=True, victim_isd=1, attacker_isd=2
                ),
            )
        specs.append(spec)
    return specs


FAMILIES: Dict[str, Callable[[str], List[ScenarioSpec]]] = {
    "incremental-deployment": _incremental_deployment,
    "ixp-models": _ixp_models,
    "sig-legacy": _sig_legacy,
    "hijack-isolation": _hijack_isolation,
    "isd-trust-split": _isd_trust_split,
}


def family_names() -> Tuple[str, ...]:
    return tuple(sorted(FAMILIES))


def build_family(name: str, scale_name: str = "test") -> List[ScenarioSpec]:
    """The validated specs of one family at one scale preset."""
    try:
        builder = FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {name!r}; choose from "
            f"{sorted(FAMILIES)}"
        ) from None
    specs = builder(scale_name)
    for spec in specs:
        spec.validate()
    return specs
