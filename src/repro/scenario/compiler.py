"""The scenario compiler: lowering a :class:`ScenarioSpec` to run objects.

Compilation is a fixed sequence of pure, seeded passes over one growing
:class:`~repro.topology.model.Topology`:

1. **substrate** — the synthetic Internet
   (:func:`~repro.topology.generator.generate_internet`);
2. **core + ISDs** — prune to the highest-degree subset, partition into
   isolation domains, promote core links (§5.1);
3. **endpoints** — seeded leaf customer trees below every core AS, the
   ASes user traffic originates from;
4. **IXPs** — big-switch peering meshes or exposed multi-site IXP ASes
   (§3.5, Figure 4);
5. **deployment partition** — an evenly spaced fraction of endpoints is
   natively SCION; the remainder is the BGP rump, reachable only through
   SIG gateways (§3.4);
6. **SIG legacy set** — the rump plus a further fraction of SCION
   endpoints whose hosts stay legacy-IP;
7. **leased lines** — parallel-link replacements between AS pairs (§3.1);
8. **hijack roles** — victim/attacker resolution for the BGP-hijack
   versus ISD-isolation contrast;
9. **overlays** — seeded fault schedules and the traffic/fault/hijack
   run plan executed by :mod:`repro.scenario.runner`.

Every pass draws randomness only from ``Random`` instances seeded by the
spec, so the same spec compiles to the same
:class:`CompiledScenario` — byte-identical across ``--jobs``,
``--shards`` and ``--backend``, and content-addressed in the experiment
cache by :func:`spec_hash`. The :meth:`CompiledScenario.manifest` dict is
the canonical JSON projection the golden fixtures pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..deployment.ixp import ExposedIXP, big_switch_peering
from ..faults.schedule import FaultPlanConfig, FaultSchedule, random_schedule
from ..runtime.cache import stable_key, topology_fingerprint
from ..simulation.beaconing import BeaconingConfig, BeaconingMode
from ..topology.generator import InternetGeneratorConfig, generate_internet
from ..topology.isd import (
    assign_isds,
    promote_core_links,
    prune_to_highest_degree,
)
from ..topology.model import Relationship, Topology
from ..traffic.engine import TrafficConfig
from ..traffic.flows import FlowConfig
from ..traffic.worker import TrafficSpec, select_legacy_asns
from .spec import IXPSpec, ScenarioError, ScenarioSpec

__all__ = [
    "CompiledIXP",
    "CompiledHijack",
    "CompiledScenario",
    "compile_scenario",
    "spec_hash",
]


def spec_hash(spec: ScenarioSpec) -> str:
    """Content address of a spec — the cache key compiled state lives
    under, so identical specs share warm state across invocations."""
    return stable_key("scenario-spec", spec)


@dataclass
class CompiledIXP:
    """One lowered IXP: its resolved members and created links."""

    name: str
    mode: str
    members: Tuple[int, ...]
    #: Peering links created among members (big-switch) or member ports
    #: plus inter-site links (exposed).
    link_ids: Tuple[int, ...]
    #: Exposed mode only: the per-site SCION ASes.
    site_asns: Tuple[int, ...] = ()


@dataclass
class CompiledHijack:
    """Resolved hijack roles (measurement happens in the runner)."""

    victim: int
    attacker: int
    victim_isd: int
    attacker_isd: int


@dataclass
class CompiledScenario:
    """Everything a scenario run needs, lowered from one spec."""

    spec: ScenarioSpec
    topology: Topology
    #: Leaf endpoint ASes (user traffic sources/sinks), sorted.
    endpoints: Tuple[int, ...]
    #: Natively SCION-enabled endpoints.
    scion_asns: Tuple[int, ...]
    #: The BGP rump: endpoints not deploying SCION, SIG-fronted.
    rump_asns: Tuple[int, ...]
    #: All SIG-fronted endpoints: the rump plus the sig.legacy_fraction.
    legacy_asns: Tuple[int, ...]
    ixps: Tuple[CompiledIXP, ...] = ()
    leased_link_ids: Tuple[int, ...] = ()
    hijack: Optional[CompiledHijack] = None
    #: Fault overlay: seeded schedules plus the monitored pairs.
    schedules: Tuple[FaultSchedule, ...] = ()
    pairs: Tuple[Tuple[int, int], ...] = ()
    #: Traffic overlay: ready-to-dispatch specs (one per run-plan unit).
    traffic_specs: Tuple[TrafficSpec, ...] = ()
    #: Beaconing configs the fault overlay runs under.
    fault_config: Optional[BeaconingConfig] = None

    def manifest(self) -> Dict[str, Any]:
        """The canonical JSON projection pinned by the golden fixtures.

        Everything here is a pure primitive; two compiles of the same
        spec produce byte-identical ``json.dumps(manifest, sort_keys=True)``
        output regardless of jobs/shards/backend.
        """
        topo = self.topology
        return {
            "spec_hash": spec_hash(self.spec),
            "spec": self.spec.to_dict(),
            "topology": {
                "fingerprint": topology_fingerprint(topo),
                "num_ases": topo.num_ases,
                "num_links": len(list(topo.links())),
                "core_asns": sorted(topo.core_asns()),
                "isd_of": {
                    str(asn): topo.as_node(asn).isd
                    for asn in sorted(topo.asns())
                },
            },
            "endpoints": list(self.endpoints),
            "scion_asns": list(self.scion_asns),
            "rump_asns": list(self.rump_asns),
            "legacy_asns": list(self.legacy_asns),
            "ixps": [
                {
                    "name": ixp.name,
                    "mode": ixp.mode,
                    "members": list(ixp.members),
                    "link_ids": list(ixp.link_ids),
                    "site_asns": list(ixp.site_asns),
                }
                for ixp in self.ixps
            ],
            "leased_link_ids": list(self.leased_link_ids),
            "hijack": (
                {
                    "victim": self.hijack.victim,
                    "attacker": self.hijack.attacker,
                    "victim_isd": self.hijack.victim_isd,
                    "attacker_isd": self.hijack.attacker_isd,
                }
                if self.hijack is not None
                else None
            ),
            "schedules": [
                stable_key("scenario-schedule", schedule)
                for schedule in self.schedules
            ],
            "pairs": [list(pair) for pair in self.pairs],
            "plan": [spec.name for spec in self.traffic_specs]
            + [f"faults:s{i}" for i in range(len(self.schedules))]
            + (["hijack"] if self.hijack is not None else []),
        }


# ------------------------------------------------------------------ passes


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a validated spec through all passes; pure and seeded."""
    spec.validate()
    topo = _pass_substrate(spec)
    topo = _pass_core_isds(spec, topo)
    endpoints = _pass_endpoints(spec, topo)
    ixps = _pass_ixps(spec, topo)
    scion, rump = _pass_deployment(spec, endpoints)
    legacy = _pass_sig(spec, scion, rump)
    leased = _pass_leased_lines(spec, topo)
    hijack = _pass_hijack(spec, topo)
    schedules, pairs, fault_config = _pass_faults(spec, topo)
    traffic_specs = _pass_traffic(spec, endpoints, legacy)
    topo.validate()
    return CompiledScenario(
        spec=spec,
        topology=topo,
        endpoints=endpoints,
        scion_asns=scion,
        rump_asns=rump,
        legacy_asns=legacy,
        ixps=ixps,
        leased_link_ids=leased,
        hijack=hijack,
        schedules=schedules,
        pairs=pairs,
        traffic_specs=traffic_specs,
        fault_config=fault_config,
    )


def _pass_substrate(spec: ScenarioSpec) -> Topology:
    sub = spec.substrate
    tier1 = sub.tier1 or max(4, sub.ases // 10)
    return generate_internet(
        InternetGeneratorConfig(
            num_ases=sub.ases,
            num_tier1=min(tier1, sub.ases),
            transit_fraction=sub.transit_fraction,
            seed=sub.seed if sub.seed is not None else spec.seed,
            first_asn=sub.first_asn,
        )
    )


def _pass_core_isds(spec: ScenarioSpec, internet: Topology) -> Topology:
    core = prune_to_highest_degree(internet, spec.isds.core_ases)
    topo = core.subtopology(core.asns(), name=f"scenario-{spec.name}")
    assign_isds(topo, spec.isds.num_isds)
    promote_core_links(topo)
    return topo


def _pass_endpoints(spec: ScenarioSpec, topo: Topology) -> Tuple[int, ...]:
    """Seeded leaf customer trees below every core AS (the same recipe as
    :func:`~repro.experiments.common.build_full_stack_topology`)."""
    next_asn = max(topo.asns()) + 1000
    rng = random.Random(spec.seed + 99)
    endpoints: List[int] = []
    for core in sorted(topo.core_asns()):
        isd = topo.as_node(core).isd
        parents = [core]
        for _ in range(spec.isds.leaves_per_core):
            parent = rng.choice(parents)
            topo.add_as(next_asn, isd=isd, is_core=False)
            topo.add_link(
                parent, next_asn, Relationship.PROVIDER_CUSTOMER,
                location="leaf",
            )
            parents.append(next_asn)
            endpoints.append(next_asn)
            next_asn += 1
    return tuple(sorted(endpoints))


def _resolve_members(
    spec: ScenarioSpec,
    ixp: IXPSpec,
    index: int,
    topo: Topology,
    claimed: set,
) -> Tuple[int, ...]:
    """Explicit members checked against the compiled core; member_count
    selectors pick the highest-degree unclaimed core ASes."""
    if ixp.members:
        members = []
        for member in ixp.members:
            if not topo.has_as(member) or not topo.as_node(member).is_core:
                raise ScenarioError(
                    f"AS {member} is not part of the compiled "
                    f"{spec.isds.core_ases}-AS core (pruned from the "
                    f"{spec.substrate.ases}-AS substrate); pick a "
                    "surviving core AS or use member_count",
                    field=f"ixps[{index}].members",
                )
            members.append(member)
        return tuple(sorted(members))
    ranked = sorted(
        (asn for asn in topo.core_asns() if asn not in claimed),
        key=lambda asn: (-topo.degree(asn), asn),
    )
    if len(ranked) < ixp.member_count:
        raise ScenarioError(
            f"member_count {ixp.member_count} exceeds the "
            f"{len(ranked)} unclaimed core ASes",
            field=f"ixps[{index}].member_count",
        )
    return tuple(sorted(ranked[: ixp.member_count]))


def _pass_ixps(
    spec: ScenarioSpec, topo: Topology
) -> Tuple[CompiledIXP, ...]:
    compiled: List[CompiledIXP] = []
    claimed: set = set()
    next_site_asn = max(topo.asns()) + 1000
    for index, ixp in enumerate(spec.ixps):
        members = _resolve_members(spec, ixp, index, topo, claimed)
        overlap = claimed & set(members)
        if overlap:
            raise ScenarioError(
                f"AS {min(overlap)} already belongs to an earlier IXP; "
                "memberships must not overlap",
                field=f"ixps[{index}].members",
            )
        claimed |= set(members)
        if ixp.mode == "big-switch":
            link_ids = big_switch_peering(
                topo, members, location=f"ixp:{ixp.name}"
            )
            compiled.append(
                CompiledIXP(
                    name=ixp.name,
                    mode=ixp.mode,
                    members=members,
                    link_ids=tuple(link_ids),
                )
            )
            continue
        exposed = ExposedIXP(topo, name=ixp.name)
        sites = exposed.add_sites(
            ixp.sites,
            first_asn=next_site_asn,
            isd=ixp.isd,
            redundant_pairs=ixp.redundant_pairs,
        )
        next_site_asn += ixp.sites
        port_links: List[int] = []
        for position, member in enumerate(members):
            port_links.append(
                exposed.attach_member(member, position % ixp.sites)
            )
        compiled.append(
            CompiledIXP(
                name=ixp.name,
                mode=ixp.mode,
                members=members,
                link_ids=tuple(
                    sorted(port_links + exposed.internal_link_ids())
                ),
                site_asns=tuple(sites),
            )
        )
    return tuple(compiled)


def _pass_deployment(
    spec: ScenarioSpec, endpoints: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    rump = select_legacy_asns(
        list(endpoints), 1.0 - spec.deployment.scion_fraction
    )
    scion = tuple(asn for asn in endpoints if asn not in set(rump))
    return scion, rump


def _pass_sig(
    spec: ScenarioSpec,
    scion: Tuple[int, ...],
    rump: Tuple[int, ...],
) -> Tuple[int, ...]:
    sig_fronted = select_legacy_asns(list(scion), spec.sig.legacy_fraction)
    return tuple(sorted(set(rump) | set(sig_fronted)))


def _pass_leased_lines(
    spec: ScenarioSpec, topo: Topology
) -> Tuple[int, ...]:
    created: List[int] = []
    for index, line in enumerate(spec.leased_lines):
        for name, asn in (("a", line.a), ("b", line.b)):
            if not topo.has_as(asn):
                raise ScenarioError(
                    f"AS {asn} is not part of the compiled topology "
                    f"(pruned from the {spec.substrate.ases}-AS "
                    "substrate); pick a surviving AS",
                    field=f"leased_lines[{index}].{name}",
                )
        existing = topo.links_between(line.a, line.b)
        relationship = (
            existing[0].relationship if existing else Relationship.PEER_PEER
        )
        for slot in range(line.count):
            link = topo.add_link(
                line.a, line.b, relationship,
                location=f"leased:{line.a}-{line.b}:{slot}",
            )
            created.append(link.link_id)
    return tuple(created)


def _pick_role(
    topo: Topology, isd: int, *, exclude: Tuple[int, ...] = ()
) -> Optional[int]:
    """The highest-degree core AS of ``isd`` (deterministic)."""
    candidates = sorted(
        (
            asn
            for asn in topo.core_asns()
            if topo.as_node(asn).isd == isd and asn not in exclude
        ),
        key=lambda asn: (-topo.degree(asn), asn),
    )
    return candidates[0] if candidates else None


def _pass_hijack(
    spec: ScenarioSpec, topo: Topology
) -> Optional[CompiledHijack]:
    if not spec.hijack.enabled:
        return None
    hijack = spec.hijack
    if hijack.victim_asn:
        victim = hijack.victim_asn
        if not topo.has_as(victim):
            raise ScenarioError(
                f"AS {victim} is not part of the compiled topology",
                field="hijack.victim_asn",
            )
    else:
        victim = _pick_role(topo, hijack.victim_isd)
        if victim is None:
            raise ScenarioError(
                f"ISD {hijack.victim_isd} has no core AS to play victim",
                field="hijack.victim_isd",
            )
    if hijack.attacker_asn:
        attacker = hijack.attacker_asn
        if not topo.has_as(attacker):
            raise ScenarioError(
                f"AS {attacker} is not part of the compiled topology",
                field="hijack.attacker_asn",
            )
    else:
        attacker = _pick_role(topo, hijack.attacker_isd, exclude=(victim,))
        if attacker is None:
            raise ScenarioError(
                f"ISD {hijack.attacker_isd} has no core AS to play "
                "attacker (distinct from the victim)",
                field="hijack.attacker_isd",
            )
    if attacker == victim:
        raise ScenarioError(
            f"victim and attacker resolve to the same AS {victim}",
            field="hijack.attacker_asn",
        )
    return CompiledHijack(
        victim=victim,
        attacker=attacker,
        victim_isd=topo.as_node(victim).isd,
        attacker_isd=topo.as_node(attacker).isd,
    )


def _pass_faults(
    spec: ScenarioSpec, topo: Topology
) -> Tuple[
    Tuple[FaultSchedule, ...],
    Tuple[Tuple[int, int], ...],
    Optional[BeaconingConfig],
]:
    overlay = spec.faults
    if not overlay.enabled:
        return (), (), None
    from ..experiments.figure6 import sample_pairs

    core_asns = sorted(topo.core_asns())
    pairs = tuple(
        sample_pairs(core_asns, overlay.num_pairs, spec.seed)
    )
    core_links = sorted(
        link.link_id
        for link in topo.links()
        if link.relationship is Relationship.CORE
    )
    monitored = {asn for pair in pairs for asn in pair}
    outage_candidates = sorted(set(core_asns) - monitored)
    schedules = []
    for index in range(overlay.num_schedules):
        plan = FaultPlanConfig(
            seed=(spec.seed << 16) + index,
            horizon=overlay.horizon,
            first_fault=overlay.first_fault,
            num_link_failures=overlay.num_link_failures,
            num_as_failures=overlay.num_as_failures,
            num_loss_bursts=overlay.num_loss_bursts,
            loss_rate=overlay.loss_rate,
        )
        schedules.append(
            random_schedule(
                topo, plan,
                link_ids=core_links,
                asns=outage_candidates or None,
            )
        )
    config = BeaconingConfig(
        interval=600.0,
        duration=overlay.horizon * 600.0,
        pcb_lifetime=6 * 3600.0,
        storage_limit=60,
        mode=BeaconingMode.CORE,
    )
    return tuple(schedules), pairs, config


#: Eviction policy pairing used throughout the figures.
_EVICTION = {"baseline": "shortest", "diversity": "diverse"}


def _pass_traffic(
    spec: ScenarioSpec,
    endpoints: Tuple[int, ...],
    legacy: Tuple[int, ...],
) -> Tuple[TrafficSpec, ...]:
    overlay = spec.traffic
    if not overlay.enabled:
        return ()
    algorithm = overlay.algorithm
    beacon = BeaconingConfig(
        interval=600.0,
        duration=6 * 600.0,
        pcb_lifetime=6 * 3600.0,
        storage_limit=60,
        eviction_policy=_EVICTION[algorithm],
    )
    core_config = replace(beacon, mode=BeaconingMode.CORE)
    intra_config = replace(beacon, mode=BeaconingMode.INTRA_ISD)
    return (
        TrafficSpec(
            name=f"{spec.name}/traffic",
            algorithm=algorithm,
            flow_config=FlowConfig(
                flows_per_tick=overlay.flows_per_tick,
                num_ticks=overlay.ticks,
                seed=spec.seed,
            ),
            traffic_config=TrafficConfig(
                link_capacity_bps=overlay.link_capacity_bps,
                policy=overlay.policy,
                # "single" lowers to the classic engine path (strategy
                # None) so pre-multipath scenarios compile unchanged.
                strategy=(
                    None if overlay.strategy == "single" else overlay.strategy
                ),
                k_paths=overlay.k_paths,
            ),
            core_config=core_config,
            intra_config=intra_config,
            seed=spec.seed,
            endpoints=endpoints,
            legacy_asns=legacy,
        ),
    )
