"""Scenario execution: compiled plan → ExperimentRuntime → results.

:func:`run_scenario` takes one :class:`~repro.scenario.spec.ScenarioSpec`,
compiles it (the compile is itself a cached prerequisite, content-
addressed by :func:`~repro.scenario.compiler.spec_hash` — a warm cache
skips straight to dispatch), then executes the plan:

* traffic overlay runs fan out through
  :meth:`~repro.runtime.ExperimentRuntime.run_traffic`;
* fault overlay runs fan out through
  :meth:`~repro.runtime.ExperimentRuntime.run_faults`;
* the hijack contrast runs inline (one seeded BGP convergence plus a
  pure ISD-isolation computation) and is cached like any prerequisite.

Every result object is a tree of primitives, so a scenario's
:class:`ScenarioRunResult` is pickle-identical across ``--jobs 1`` and
``--jobs N`` — the same determinism contract every experiment honors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bgp.simulator import BGPSimulation
from ..faults.injector import FaultRunResult
from ..faults.runner import FaultSpec
from ..runtime import ExperimentRuntime
from ..topology.isd import customer_cone
from ..topology.model import Topology
from ..traffic.metrics import TrafficRunResult
from .compiler import CompiledHijack, CompiledScenario, compile_scenario
from .spec import ScenarioSpec

__all__ = [
    "HijackResult",
    "ScenarioRunResult",
    "FamilyRunResult",
    "measure_hijack",
    "run_scenario",
    "run_family",
]


@dataclass(frozen=True)
class HijackResult:
    """The BGP-hijack versus ISD-isolation contrast for one scenario."""

    victim: int
    attacker: int
    victim_isd: int
    attacker_isd: int
    #: ASes whose converged BGP best path to the victim's prefix
    #: originates at the attacker.
    bgp_deceived: Tuple[int, ...]
    #: ASes the attacker could deceive under SCION's ISD trust model:
    #: empty from a foreign ISD, bounded within the victim's own.
    scion_deceived: Tuple[int, ...]
    #: ASes evaluated (everything except victim and attacker).
    total: int

    def bgp_fraction(self) -> float:
        return len(self.bgp_deceived) / self.total if self.total else 0.0

    def scion_fraction(self) -> float:
        return len(self.scion_deceived) / self.total if self.total else 0.0


def measure_hijack(
    topology: Topology, roles: CompiledHijack
) -> HijackResult:
    """Run the contrast: seeded BGP convergence with the attacker also
    originating the victim's prefix, versus the ISD-isolation bound.

    On the BGP side the deceived set falls out of the converged origins.
    On the SCION side no simulation is needed — it is a trust statement:
    an attacker in a *different* ISD cannot forge the victim ISD's trust
    root, so nobody is deceived; an attacker inside the victim's own ISD
    can deceive at most the ASes that transit it (its customer cone, or
    the whole ISD when the attacker is a core AS).
    """
    victim, attacker = roles.victim, roles.attacker
    sim = BGPSimulation(topology).run(
        extra_originations=[(attacker, victim)]
    )
    others = [
        asn for asn in topology.asns() if asn not in (victim, attacker)
    ]
    bgp_deceived = []
    for asn in others:
        path = sim.best_path(asn, victim)
        if path is not None and path[0] == attacker:
            bgp_deceived.append(asn)

    if roles.attacker_isd != roles.victim_isd:
        scion_deceived: List[int] = []
    elif topology.as_node(attacker).is_core:
        scion_deceived = [
            asn
            for asn in others
            if topology.as_node(asn).isd == roles.victim_isd
        ]
    else:
        cone = customer_cone(topology, attacker)
        scion_deceived = [
            asn
            for asn in others
            if asn in cone
            and topology.as_node(asn).isd == roles.victim_isd
        ]
    return HijackResult(
        victim=victim,
        attacker=attacker,
        victim_isd=roles.victim_isd,
        attacker_isd=roles.attacker_isd,
        bgp_deceived=tuple(sorted(bgp_deceived)),
        scion_deceived=tuple(sorted(scion_deceived)),
        total=len(others),
    )


@dataclass
class ScenarioRunResult:
    """One scenario's deterministic outcome (no wall-clock content)."""

    name: str
    spec_hash: str
    num_ases: int
    num_isds: int
    num_endpoints: int
    num_scion: int
    num_legacy: int
    traffic: Dict[str, TrafficRunResult] = field(default_factory=dict)
    faults: List[FaultRunResult] = field(default_factory=list)
    hijack: Optional[HijackResult] = None

    def render(self) -> str:
        lines = [
            f"Scenario {self.name} [{self.spec_hash[:12]}]: "
            f"{self.num_ases} ASes in {self.num_isds} ISD(s), "
            f"{self.num_scion}/{self.num_endpoints} endpoints SCION-native "
            f"({self.num_legacy} behind SIGs)"
        ]
        for run_name in sorted(self.traffic):
            result = self.traffic[run_name]
            lines.append(
                f"  traffic {run_name}: "
                f"{result.mean_goodput_bps() / 1e6:.2f} Mbit/s goodput, "
                f"{result.delivered_fraction():.1%} delivered, "
                f"p50 {result.latency_percentile(0.5) * 1e3:.1f} ms, "
                f"{result.packets_forwarded} packets, "
                f"{result.sig_encapsulated} SIG-encapsulated"
            )
        if self.faults:
            times = [
                value
                for result in self.faults
                for value in result.restore_times()
            ]
            revocations = sum(r.revocations_issued for r in self.faults)
            mean = sum(times) / len(times) if times else 0.0
            lines.append(
                f"  faults: {len(self.faults)} schedule(s), "
                f"{revocations} revocations, "
                f"{len(times)} restore events "
                f"(mean {mean:.0f}s)"
            )
        if self.hijack is not None:
            hijack = self.hijack
            relation = (
                "same ISD"
                if hijack.attacker_isd == hijack.victim_isd
                else "cross-ISD"
            )
            lines.append(
                f"  hijack ({relation}): AS {hijack.attacker} "
                f"(ISD {hijack.attacker_isd}) originates AS "
                f"{hijack.victim}'s prefix (ISD {hijack.victim_isd}) — "
                f"BGP deceives {len(hijack.bgp_deceived)}/{hijack.total} "
                f"ASes ({hijack.bgp_fraction():.0%}); SCION ISD "
                f"isolation bounds it to {len(hijack.scion_deceived)} "
                f"({hijack.scion_fraction():.0%})"
            )
        return "\n".join(lines)


@dataclass
class FamilyRunResult:
    """All variants of one family, in family order."""

    family: str
    scale_name: str
    results: List[ScenarioRunResult]

    def render(self) -> str:
        lines = [
            f"Scenario family {self.family} (scale={self.scale_name}, "
            f"{len(self.results)} variant(s)):",
            "",
        ]
        for result in self.results:
            lines.append(result.render())
            lines.append("")
        return "\n".join(lines).rstrip()


def run_scenario(
    spec: ScenarioSpec,
    *,
    runtime: Optional[ExperimentRuntime] = None,
) -> ScenarioRunResult:
    """Compile one scenario (cached) and execute its whole run plan."""
    rt = runtime if runtime is not None else ExperimentRuntime()
    rt.report.experiment = rt.report.experiment or "scenarios"
    compiled: CompiledScenario = rt.cached_value(
        "scenario-compile",
        [spec],
        lambda: compile_scenario(spec),
        phase=f"compile:{spec.name}",
    )
    topology = compiled.topology
    result = ScenarioRunResult(
        name=spec.name,
        spec_hash=compiled.manifest()["spec_hash"],
        num_ases=topology.num_ases,
        num_isds=len(
            {topology.as_node(asn).isd for asn in topology.asns()}
        ),
        num_endpoints=len(compiled.endpoints),
        num_scion=len(compiled.scion_asns),
        num_legacy=len(compiled.legacy_asns),
    )

    if compiled.traffic_specs:
        tasks = [(topology, ts) for ts in compiled.traffic_specs]
        for outcome in rt.run_traffic(tasks):
            result.traffic[outcome.name] = outcome.result

    if compiled.schedules:
        assert compiled.fault_config is not None
        fault_tasks = []
        for index, schedule in enumerate(compiled.schedules):
            fault_tasks.append(
                (
                    topology,
                    FaultSpec(
                        name=f"{spec.name}/faults:s{index}",
                        algorithm="diversity",
                        config=compiled.fault_config,
                        schedule=schedule,
                        seed=spec.seed,
                        loss_seed=(spec.seed << 16) + index,
                        pairs=compiled.pairs,
                    ),
                )
            )
        for outcome in rt.run_faults(fault_tasks):
            result.faults.append(outcome.result)

    if compiled.hijack is not None:
        roles = compiled.hijack
        result.hijack = rt.cached_value(
            "scenario-hijack",
            [spec],
            lambda: measure_hijack(topology, roles),
            phase=f"hijack:{spec.name}",
        )
    return result


def run_family(
    name: str,
    scale_name: str = "test",
    *,
    runtime: Optional[ExperimentRuntime] = None,
) -> FamilyRunResult:
    """Run every variant of one built-in family."""
    from .families import build_family

    rt = runtime if runtime is not None else ExperimentRuntime()
    rt.report.experiment = rt.report.experiment or "scenarios"
    rt.report.scale = scale_name
    specs = build_family(name, scale_name)
    results = [run_scenario(spec, runtime=rt) for spec in specs]
    return FamilyRunResult(
        family=name, scale_name=scale_name, results=results
    )
