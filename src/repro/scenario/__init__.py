"""Declarative scenario compiler for deployment-diversity experiments.

The subsystem has three layers, mirroring a classic compiler:

* :mod:`repro.scenario.spec` — the frontend: a declarative DSL of plain
  dataclasses (loadable from TOML/JSON) describing ISDs, core/non-core
  ASes, IXP models, SIG legacy fractions, leased lines, partial
  deployment with a BGP rump, and fault/traffic overlays — with eager,
  field-addressed validation (:class:`ScenarioError`);
* :mod:`repro.scenario.compiler` — the deterministic lowering from a
  :class:`ScenarioSpec` to the existing ``Topology``/deployment/faults/
  traffic objects plus a run plan (pure, seeded, content-addressed);
* :mod:`repro.scenario.runner` — execution of the compiled plan through
  :class:`~repro.runtime.ExperimentRuntime`, preserving the repo-wide
  jobs/shards/backend determinism contract.

:mod:`repro.scenario.families` ships the built-in scenario families the
``scenarios`` CLI experiment exposes.
"""

from .compiler import (
    CompiledHijack,
    CompiledIXP,
    CompiledScenario,
    compile_scenario,
    spec_hash,
)
from .families import FAMILIES, SMOKE_FAMILY, build_family, family_names
from .runner import (
    FamilyRunResult,
    HijackResult,
    ScenarioRunResult,
    measure_hijack,
    run_family,
    run_scenario,
)
from .spec import (
    DeploymentSpec,
    FaultOverlaySpec,
    HijackSpec,
    IsdLayoutSpec,
    IXPSpec,
    LeasedLineSpec,
    ScenarioError,
    ScenarioSpec,
    SigSpec,
    SubstrateSpec,
    TrafficOverlaySpec,
    load_spec,
)

__all__ = [
    "CompiledHijack",
    "CompiledIXP",
    "CompiledScenario",
    "compile_scenario",
    "spec_hash",
    "FAMILIES",
    "SMOKE_FAMILY",
    "build_family",
    "family_names",
    "FamilyRunResult",
    "HijackResult",
    "ScenarioRunResult",
    "measure_hijack",
    "run_family",
    "run_scenario",
    "DeploymentSpec",
    "FaultOverlaySpec",
    "HijackSpec",
    "IsdLayoutSpec",
    "IXPSpec",
    "LeasedLineSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SigSpec",
    "SubstrateSpec",
    "TrafficOverlaySpec",
    "load_spec",
]
