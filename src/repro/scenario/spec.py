"""The declarative scenario DSL: dataclass specs, loading, validation.

A :class:`ScenarioSpec` describes one deployment-diversity experiment the
way the seed-emulator's Base/Routing/Ebgp layers describe a network: ISDs,
core/non-core ASes, IXPs (big-switch or exposed-topology), SIG legacy
fractions, leased lines, partial-deployment fractions with a BGP rump,
and fault/traffic overlays — all as plain primitives. Specs load from
TOML or JSON files (:func:`load_spec`), round-trip through dicts
(:meth:`ScenarioSpec.from_dict` / :meth:`ScenarioSpec.to_dict`), pickle
into process-pool tasks unchanged, and fingerprint into the experiment
cache via :func:`repro.runtime.cache.stable_key` — the content-addressed
hash that keys compiled state.

Validation is eager and field-addressed: every structural error raises
:class:`ScenarioError` carrying the dotted path of the offending field
(``ixps[1].members``, ``deployment.scion_fraction``), so a 200-line spec
file fails with the line that is wrong, not a stack trace from pass three
of the compiler.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ScenarioError",
    "SubstrateSpec",
    "IsdLayoutSpec",
    "DeploymentSpec",
    "SigSpec",
    "IXPSpec",
    "LeasedLineSpec",
    "HijackSpec",
    "FaultOverlaySpec",
    "TrafficOverlaySpec",
    "ScenarioSpec",
    "load_spec",
    "spec_from_dict",
]


class ScenarioError(ValueError):
    """A structurally invalid scenario spec.

    ``field`` is the dotted path of the offending field (list entries are
    indexed: ``ixps[0].members``); the message always includes it.
    """

    def __init__(self, message: str, *, field: str = "") -> None:
        self.field = field
        super().__init__(f"{field}: {message}" if field else message)


# --------------------------------------------------------------- sub-specs


@dataclass(frozen=True)
class SubstrateSpec:
    """The synthetic Internet the scenario is carved from (pass 1)."""

    #: Total ASes of the generated Internet (AS-rel-geo stand-in).
    ases: int = 60
    #: Tier-1 ASes forming the meshed top; 0 = derived from ``ases``.
    tier1: int = 0
    #: Fraction of non-tier-1 ASes providing transit.
    transit_fraction: float = 0.15
    #: Generator seed; ``None`` inherits the scenario seed.
    seed: Optional[int] = None
    first_asn: int = 1


@dataclass(frozen=True)
class IsdLayoutSpec:
    """Core extraction and isolation-domain layout (pass 2)."""

    #: Highest-degree ASes kept as the SCION core network.
    core_ases: int = 8
    #: Isolation domains the core is partitioned into (ISDs 1..num_isds).
    num_isds: int = 2
    #: Leaf (customer) ASes hung below every core AS — the endpoints.
    leaves_per_core: int = 2


@dataclass(frozen=True)
class DeploymentSpec:
    """Partial SCION adoption with a BGP rump (pass 3, §3.4)."""

    #: Fraction of endpoint ASes natively SCION-enabled; the remainder is
    #: the BGP rump, reachable only through SIG gateways.
    scion_fraction: float = 1.0


@dataclass(frozen=True)
class SigSpec:
    """SCION-IP-gateway legacy hosts (pass 5, §3.4)."""

    #: Fraction of the *SCION-enabled* endpoints whose hosts stay
    #: legacy-IP behind a carrier-grade SIG (on top of the BGP rump,
    #: which is always SIG-fronted).
    legacy_fraction: float = 0.0


@dataclass(frozen=True)
class IXPSpec:
    """One Internet exchange point (pass 4, §3.5 / Figure 4)."""

    name: str = "ixp"
    #: ``big-switch`` (transparent L2 fabric: bilateral peering mesh) or
    #: ``exposed`` (one SCION AS per site, inter-site links visible).
    mode: str = "big-switch"
    #: Explicit member ASNs; empty means ``member_count`` selects the
    #: highest-degree core ASes deterministically at compile time.
    members: Tuple[int, ...] = ()
    member_count: int = 0
    #: Exposed-topology knobs: site count, the ISD the site ASes join,
    #: and redundant (backup) inter-site pairs by site index.
    sites: int = 2
    isd: int = 1
    redundant_pairs: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class LeasedLineSpec:
    """A leased-line replacement between two ASes (pass 6, §3.1):
    ``count`` parallel SCION links at distinct locations."""

    a: int = 0
    b: int = 0
    count: int = 2


@dataclass(frozen=True)
class HijackSpec:
    """A BGP prefix hijack contrasted with SCION's ISD isolation.

    The attacker originates the victim's prefix in the BGP view; on the
    SCION side, ISD trust isolation bounds who can be deceived. Victim and
    attacker are picked deterministically from the named ISDs unless
    pinned by ASN.
    """

    enabled: bool = False
    victim_isd: int = 1
    attacker_isd: int = 2
    #: Optional explicit role pins (0 = auto-select from the ISD).
    victim_asn: int = 0
    attacker_asn: int = 0


@dataclass(frozen=True)
class FaultOverlaySpec:
    """Seeded fault schedules over the compiled core network."""

    enabled: bool = False
    num_schedules: int = 2
    horizon: int = 20
    first_fault: int = 8
    num_link_failures: int = 2
    num_as_failures: int = 0
    num_loss_bursts: int = 0
    loss_rate: float = 0.25
    #: Monitored (origin, receiver) pairs sampled over the core.
    num_pairs: int = 12


@dataclass(frozen=True)
class TrafficOverlaySpec:
    """A data-plane workload over the compiled network."""

    enabled: bool = False
    flows_per_tick: int = 8
    ticks: int = 6
    link_capacity_bps: float = 4e6
    policy: str = "shortest-latency"
    algorithm: str = "diversity"
    #: Multipath scheduling strategy (``repro.multipath``); ``"single"``
    #: keeps the classic one-path-per-flow engine behavior.
    strategy: str = "single"
    #: Maximum paths per flow when ``strategy`` is a multipath one.
    k_paths: int = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative deployment-diversity scenario.

    Pure primitives end to end: picklable, hashable through
    ``stable_key``, and loadable from TOML/JSON. ``validate()`` (called by
    the compiler and the loaders) raises :class:`ScenarioError` on every
    structural problem, naming the offending field.
    """

    name: str = "scenario"
    seed: int = 7
    substrate: SubstrateSpec = field(default_factory=SubstrateSpec)
    isds: IsdLayoutSpec = field(default_factory=IsdLayoutSpec)
    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    sig: SigSpec = field(default_factory=SigSpec)
    ixps: Tuple[IXPSpec, ...] = ()
    leased_lines: Tuple[LeasedLineSpec, ...] = ()
    hijack: HijackSpec = field(default_factory=HijackSpec)
    faults: FaultOverlaySpec = field(default_factory=FaultOverlaySpec)
    traffic: TrafficOverlaySpec = field(default_factory=TrafficOverlaySpec)

    # ------------------------------------------------------------- loading

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        spec = spec_from_dict(data)
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Plain-primitive dict (tuples become lists) — JSON-ready."""
        return _plain(dataclasses.asdict(self))

    # ---------------------------------------------------------- validation

    def validate(self) -> None:
        """Check every cross-reference and bound; raises ScenarioError."""
        sub = self.substrate
        if sub.ases < 4:
            raise ScenarioError(
                f"need at least 4 ASes, got {sub.ases}", field="substrate.ases"
            )
        if sub.tier1 < 0 or sub.tier1 > sub.ases:
            raise ScenarioError(
                f"tier1 must be within [0, {sub.ases}], got {sub.tier1}",
                field="substrate.tier1",
            )
        _check_fraction(
            sub.transit_fraction, "substrate.transit_fraction"
        )
        layout = self.isds
        if layout.core_ases < 2:
            raise ScenarioError(
                f"need at least 2 core ASes, got {layout.core_ases}",
                field="isds.core_ases",
            )
        if layout.core_ases > sub.ases:
            raise ScenarioError(
                f"core_ases {layout.core_ases} exceeds the substrate's "
                f"{sub.ases} ASes",
                field="isds.core_ases",
            )
        if not 1 <= layout.num_isds <= layout.core_ases:
            raise ScenarioError(
                f"num_isds must be within [1, {layout.core_ases}], "
                f"got {layout.num_isds}",
                field="isds.num_isds",
            )
        if layout.leaves_per_core < 1:
            raise ScenarioError(
                "every core AS needs at least one leaf (the endpoints)",
                field="isds.leaves_per_core",
            )
        _check_fraction(
            self.deployment.scion_fraction, "deployment.scion_fraction"
        )
        _check_fraction(self.sig.legacy_fraction, "sig.legacy_fraction")

        known_isds = set(range(1, layout.num_isds + 1))
        seen_members: Dict[int, str] = {}
        seen_names: Dict[str, str] = {}
        for index, ixp in enumerate(self.ixps):
            prefix = f"ixps[{index}]"
            if ixp.mode not in ("big-switch", "exposed"):
                raise ScenarioError(
                    f"unknown IXP mode {ixp.mode!r}; "
                    "use 'big-switch' or 'exposed'",
                    field=f"{prefix}.mode",
                )
            if ixp.name in seen_names:
                raise ScenarioError(
                    f"IXP name {ixp.name!r} already used by "
                    f"{seen_names[ixp.name]}",
                    field=f"{prefix}.name",
                )
            seen_names[ixp.name] = prefix
            if not ixp.members and ixp.member_count < 2:
                raise ScenarioError(
                    "an IXP needs explicit members or member_count >= 2",
                    field=f"{prefix}.member_count",
                )
            if ixp.members and len(set(ixp.members)) != len(ixp.members):
                raise ScenarioError(
                    f"duplicate member in {sorted(ixp.members)}",
                    field=f"{prefix}.members",
                )
            for member in ixp.members:
                self._check_substrate_asn(member, f"{prefix}.members")
                if member in seen_members:
                    raise ScenarioError(
                        f"AS {member} already belongs to IXP "
                        f"{seen_members[member]}; memberships must not "
                        "overlap",
                        field=f"{prefix}.members",
                    )
                seen_members[member] = seen_names_key = ixp.name
            if ixp.mode == "exposed":
                if ixp.sites < 2:
                    raise ScenarioError(
                        f"an exposed IXP needs at least 2 sites, "
                        f"got {ixp.sites}",
                        field=f"{prefix}.sites",
                    )
                if ixp.isd not in known_isds:
                    raise ScenarioError(
                        f"unknown ISD {ixp.isd}; the layout defines ISDs "
                        f"1..{layout.num_isds}",
                        field=f"{prefix}.isd",
                    )
                for a, b in ixp.redundant_pairs:
                    if not (0 <= a < ixp.sites and 0 <= b < ixp.sites):
                        raise ScenarioError(
                            f"site pair ({a}, {b}) outside the "
                            f"{ixp.sites} sites",
                            field=f"{prefix}.redundant_pairs",
                        )
        for index, line in enumerate(self.leased_lines):
            prefix = f"leased_lines[{index}]"
            self._check_substrate_asn(line.a, f"{prefix}.a")
            self._check_substrate_asn(line.b, f"{prefix}.b")
            if line.a == line.b:
                raise ScenarioError(
                    f"a leased line needs two distinct ASes, got {line.a} "
                    "twice",
                    field=f"{prefix}.b",
                )
            if line.count < 1:
                raise ScenarioError(
                    "a leased line needs at least one link",
                    field=f"{prefix}.count",
                )
        if self.hijack.enabled:
            for name in ("victim_isd", "attacker_isd"):
                isd = getattr(self.hijack, name)
                if isd not in known_isds:
                    raise ScenarioError(
                        f"unknown ISD {isd}; the layout defines ISDs "
                        f"1..{layout.num_isds}",
                        field=f"hijack.{name}",
                    )
            for name in ("victim_asn", "attacker_asn"):
                asn = getattr(self.hijack, name)
                if asn:
                    self._check_substrate_asn(asn, f"hijack.{name}")
        faults = self.faults
        if faults.enabled:
            if faults.num_schedules < 1:
                raise ScenarioError(
                    "need at least one schedule",
                    field="faults.num_schedules",
                )
            # random_schedule guarantees every outage (up to 3 intervals)
            # recovers with a 6-interval re-exploration margin before the
            # horizon; surface the resulting bound as a spec error.
            if faults.horizon < faults.first_fault + 3 + 6:
                raise ScenarioError(
                    f"horizon {faults.horizon} too short: needs at least "
                    f"first_fault ({faults.first_fault}) + max outage (3) "
                    "+ recovery margin (6) intervals",
                    field="faults.horizon",
                )
            if faults.num_loss_bursts:
                _check_fraction(
                    faults.loss_rate, "faults.loss_rate", exclusive_zero=True
                )
        traffic = self.traffic
        if traffic.enabled:
            if traffic.flows_per_tick < 1 or traffic.ticks < 1:
                raise ScenarioError(
                    "flows_per_tick and ticks must be positive",
                    field="traffic.flows_per_tick",
                )
            if traffic.algorithm not in ("baseline", "diversity"):
                raise ScenarioError(
                    f"unknown algorithm {traffic.algorithm!r}; use "
                    "'baseline' or 'diversity'",
                    field="traffic.algorithm",
                )
            from ..multipath.scheduler import STRATEGY_NAMES

            if traffic.strategy not in STRATEGY_NAMES:
                raise ScenarioError(
                    f"unknown multipath strategy {traffic.strategy!r}; "
                    f"use one of {sorted(STRATEGY_NAMES)}",
                    field="traffic.strategy",
                )
            if traffic.k_paths < 1:
                raise ScenarioError(
                    "k_paths must be positive", field="traffic.k_paths"
                )

    def _check_substrate_asn(self, asn: int, field_name: str) -> None:
        first = self.substrate.first_asn
        last = first + self.substrate.ases - 1
        if not first <= asn <= last:
            raise ScenarioError(
                f"unknown AS {asn}; the substrate defines ASes "
                f"{first}..{last}",
                field=field_name,
            )


# ------------------------------------------------------------- dict builds


def _check_fraction(
    value: float, field_name: str, *, exclusive_zero: bool = False
) -> None:
    low_ok = value > 0.0 if exclusive_zero else value >= 0.0
    if not (low_ok and value <= 1.0):
        bounds = "(0, 1]" if exclusive_zero else "[0, 1]"
        raise ScenarioError(
            f"fraction must be within {bounds}, got {value}",
            field=field_name,
        )


def _plain(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


#: Nested sub-spec classes by ScenarioSpec field name.
_SECTIONS = {
    "substrate": SubstrateSpec,
    "isds": IsdLayoutSpec,
    "deployment": DeploymentSpec,
    "sig": SigSpec,
    "hijack": HijackSpec,
    "faults": FaultOverlaySpec,
    "traffic": TrafficOverlaySpec,
}

#: List-of-sub-spec fields: (element class, tuple-of-tuples fields).
_LISTS = {
    "ixps": IXPSpec,
    "leased_lines": LeasedLineSpec,
}


def _build(cls, data: Any, prefix: str):
    """Construct dataclass ``cls`` from a plain dict, field-addressed."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"expected a table/object, got {type(data).__name__}",
            field=prefix,
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {unknown}; known keys: {sorted(known)}",
            field=f"{prefix}.{unknown[0]}" if prefix else unknown[0],
        )
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, list):
            value = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in value
            )
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(str(exc), field=prefix) from None


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from nested plain dicts (no
    validation — :meth:`ScenarioSpec.from_dict` validates too)."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"a scenario spec must be a table/object, got "
            f"{type(data).__name__}"
        )
    built: Dict[str, Any] = {}
    for key, value in data.items():
        if key in _SECTIONS:
            built[key] = _build(_SECTIONS[key], value, key)
        elif key in _LISTS:
            if not isinstance(value, list):
                raise ScenarioError(
                    f"expected an array of tables, got "
                    f"{type(value).__name__}",
                    field=key,
                )
            built[key] = tuple(
                _build(_LISTS[key], item, f"{key}[{index}]")
                for index, item in enumerate(value)
            )
        else:
            built[key] = value
    return _build(ScenarioSpec, built, "")


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a scenario spec from a TOML or JSON file.

    The format is chosen by suffix (``.toml`` / ``.json``); TOML needs
    the stdlib ``tomllib`` (Python >= 3.11) — older interpreters get a
    clear error pointing at the JSON equivalent.
    """
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"scenario file {path} does not exist")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise ScenarioError(
                f"{path}: TOML specs need Python >= 3.11 (tomllib); "
                "convert the spec to JSON for older interpreters"
            ) from None
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path}: invalid TOML ({exc})") from None
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ScenarioError(f"{path}: invalid JSON ({exc})") from None
    else:
        raise ScenarioError(
            f"unsupported scenario format {path.suffix!r}; "
            "use .toml or .json"
        )
    return ScenarioSpec.from_dict(data)
