"""SCION-IP Gateways (Section 3.4).

The SIG gives legacy IP hosts transparent access to the SCION network: it
maps the destination IP address to a SCION AS via the ASMap table,
encapsulates the IP packet in a SCION packet, and routes it to a border
router; the destination-side SIG decapsulates. The carrier-grade SIG
(CGSIG) is the same function operated by the provider for many customers.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataplane.packet import HostAddress, ScionPacket

__all__ = ["IPPacket", "ASMap", "ScionIPGateway", "CarrierGradeSIG"]


@dataclass(frozen=True)
class IPPacket:
    """A legacy IP packet entering a SIG."""

    src_ip: str
    dst_ip: str
    payload_bytes: int = 0
    header_bytes: int = 20

    @property
    def total_bytes(self) -> int:
        return self.header_bytes + self.payload_bytes


class ASMap:
    """Longest-prefix-match table from IP space to (ISD, AS) [ASMap, §3.4]."""

    def __init__(self) -> None:
        self._entries: List[Tuple[ipaddress.IPv4Network, Tuple[int, int]]] = []

    def add(self, prefix: str, isd: int, asn: int) -> None:
        network = ipaddress.ip_network(prefix, strict=True)
        if not isinstance(network, ipaddress.IPv4Network):
            raise ValueError("ASMap models IPv4 prefixes")
        self._entries.append((network, (isd, asn)))
        self._entries.sort(key=lambda e: e[0].prefixlen, reverse=True)

    def lookup(self, ip: str) -> Optional[Tuple[int, int]]:
        address = ipaddress.ip_address(ip)
        for network, dest in self._entries:
            if address in network:
                return dest
        return None

    def __len__(self) -> int:
        return len(self._entries)


class ScionIPGateway:
    """A SIG instance at one AS."""

    def __init__(
        self, isd: int, asn: int, asmap: ASMap, *, local_ip: str = "10.0.0.1"
    ) -> None:
        self.isd = isd
        self.asn = asn
        self.asmap = asmap
        self.local_ip = local_ip
        self.encapsulated = 0
        self.decapsulated = 0
        self.unroutable = 0

    def encapsulate(
        self, packet: IPPacket, forwarding_path
    ) -> Optional[ScionPacket]:
        """Wrap an IP packet into a SCION packet along a given path.

        Returns None (and counts it) when the ASMap has no entry for the
        destination — such traffic stays on the legacy Internet.
        """
        destination = self.asmap.lookup(packet.dst_ip)
        if destination is None:
            self.unroutable += 1
            return None
        dst_isd, dst_asn = destination
        self.encapsulated += 1
        return ScionPacket(
            source=HostAddress(self.isd, self.asn, packet.src_ip),
            destination=HostAddress(dst_isd, dst_asn, packet.dst_ip),
            path=forwarding_path,
            payload_bytes=packet.total_bytes,
        )

    def decapsulate(self, packet: ScionPacket) -> IPPacket:
        """Unwrap a SCION packet back into the inner IP packet."""
        if packet.destination.asn != self.asn:
            raise ValueError(
                f"SIG of AS {self.asn} received packet for AS "
                f"{packet.destination.asn}"
            )
        self.decapsulated += 1
        return IPPacket(
            src_ip=packet.source.local,
            dst_ip=packet.destination.local,
            payload_bytes=max(0, packet.payload_bytes - 20),
        )


class CarrierGradeSIG(ScionIPGateway):
    """Provider-operated SIG aggregating many legacy customers (Fig. 3c).

    Customers are plain IP prefixes; nothing changes on their premises.
    """

    def __init__(self, isd: int, asn: int, asmap: ASMap) -> None:
        super().__init__(isd, asn, asmap)
        self._customers: Dict[str, ipaddress.IPv4Network] = {}

    def attach_customer(self, name: str, prefix: str) -> None:
        network = ipaddress.ip_network(prefix, strict=True)
        self._customers[name] = network

    def customer_of(self, ip: str) -> Optional[str]:
        address = ipaddress.ip_address(ip)
        for name, network in sorted(self._customers.items()):
            if address in network:
                return name
        return None

    @property
    def num_customers(self) -> int:
        return len(self._customers)
