"""Leased-line replacement economics (Section 3.1).

"to connect N branches with K data centers, which can be implemented using
N x K leased lines, N + K SCION connections are required (and for even
larger savings if redundancy is needed)."

The model compares connection counts and monthly cost for both designs,
including the redundancy variant (each leased line duplicated vs. one
additional SCION uplink per site).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConnectivityRequirement", "CostComparison", "compare_costs"]


@dataclass(frozen=True)
class ConnectivityRequirement:
    """Full-mesh connectivity between branches and data centers."""

    branches: int
    data_centers: int
    #: 1 = no redundancy; 2 = every site/line duplicated, etc.
    redundancy: int = 1

    def __post_init__(self) -> None:
        if self.branches < 1 or self.data_centers < 1:
            raise ValueError("need at least one branch and one data center")
        if self.redundancy < 1:
            raise ValueError("redundancy must be >= 1")

    @property
    def leased_lines_needed(self) -> int:
        """N x K lines, each replicated over a disjoint physical route per
        redundancy level."""
        return self.branches * self.data_centers * self.redundancy

    @property
    def scion_connections_needed(self) -> int:
        """N + K uplinks; at most one extra uplink per site for redundancy.

        Leased-line redundancy needs a disjoint line per *pair* and level;
        SCION sites only need a second uplink to survive access-link
        failure — beyond that, redundancy comes from the network's inherent
        multi-path (the paper's "even larger savings if redundancy is
        needed").
        """
        uplinks_per_site = min(self.redundancy, 2)
        return (self.branches + self.data_centers) * uplinks_per_site


@dataclass(frozen=True)
class CostComparison:
    requirement: ConnectivityRequirement
    leased_line_monthly: float
    scion_connection_monthly: float

    @property
    def leased_total(self) -> float:
        return self.requirement.leased_lines_needed * self.leased_line_monthly

    @property
    def scion_total(self) -> float:
        return (
            self.requirement.scion_connections_needed
            * self.scion_connection_monthly
        )

    @property
    def savings_factor(self) -> float:
        if self.scion_total <= 0:
            raise ValueError("SCION cost must be positive")
        return self.leased_total / self.scion_total


def compare_costs(
    branches: int,
    data_centers: int,
    *,
    redundancy: int = 1,
    leased_line_monthly: float = 1000.0,
    scion_connection_monthly: float = 1000.0,
) -> CostComparison:
    """Convenience constructor for the Section 3.1 comparison."""
    return CostComparison(
        requirement=ConnectivityRequirement(
            branches=branches,
            data_centers=data_centers,
            redundancy=redundancy,
        ),
        leased_line_monthly=leased_line_monthly,
        scion_connection_monthly=scion_connection_monthly,
    )
