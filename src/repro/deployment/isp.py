"""ISP deployment models (Section 3.3, Figure 2).

Three ways adjacent SCION-enabled ISPs interconnect:

* **native SCION link** (Fig. 2a) — a layer-2 cross-connection between the
  SCION border routers; BGP-free by construction, no encapsulation;
* **router-on-a-stick** (Fig. 2b) — SCION packets are IP-encapsulated over
  a short hop through the legacy border routers; BGP-free via host routes,
  but the shared link needs a queueing discipline guaranteeing SCION a
  minimum bandwidth share;
* **redundant connection** (Fig. 2c) — both of the above combined, exposed
  either as one logical link or as two SCION links with distinct interface
  ids (enabling endpoint multi-path across them).

The model computes the properties the paper argues about: BGP-freeness,
encapsulation overhead, guaranteed bandwidth under IP cross-traffic, and
the interface count a redundant deployment exposes to the control plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..topology.model import Relationship, Topology

__all__ = [
    "DeploymentModel",
    "LinkDeployment",
    "deploy_adjacent_isps",
    "IP_ENCAPSULATION_OVERHEAD_BYTES",
]

#: Outer IPv4 + UDP headers around an encapsulated SCION packet.
IP_ENCAPSULATION_OVERHEAD_BYTES = 28


class DeploymentModel(enum.Enum):
    NATIVE = "native"
    ROUTER_ON_A_STICK = "router-on-a-stick"
    REDUNDANT = "redundant"


@dataclass(frozen=True)
class LinkDeployment:
    """One inter-ISP SCION connection under a deployment model."""

    model: DeploymentModel
    capacity_bps: float
    #: Fraction of the link the queueing discipline guarantees to SCION
    #: (only meaningful when the link is shared with IP traffic).
    scion_share: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.scion_share <= 1.0:
            raise ValueError("scion_share must be in (0, 1]")

    @property
    def is_bgp_free(self) -> bool:
        """All three models avoid any dependence on BGP routes: native and
        redundant by construction, router-on-a-stick via host routes."""
        return True

    @property
    def shares_link_with_ip(self) -> bool:
        return self.model is not DeploymentModel.NATIVE

    @property
    def encapsulation_overhead(self) -> int:
        if self.model is DeploymentModel.NATIVE:
            return 0
        return IP_ENCAPSULATION_OVERHEAD_BYTES

    def guaranteed_scion_bandwidth(self, ip_load_bps: float = 0.0) -> float:
        """Bandwidth available to SCION under adversarial IP cross-traffic.

        Without a queueing discipline an attacker could crowd SCION out
        entirely; with one, SCION keeps at least its configured share.
        """
        if ip_load_bps < 0:
            raise ValueError("ip_load_bps cannot be negative")
        if not self.shares_link_with_ip:
            return self.capacity_bps
        contended = max(0.0, self.capacity_bps - ip_load_bps)
        return max(self.capacity_bps * self.scion_share, contended)

    def goodput_fraction(self, packet_bytes: int) -> float:
        """Fraction of bytes on the wire that are SCION payload+header."""
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        return packet_bytes / (packet_bytes + self.encapsulation_overhead)


def deploy_adjacent_isps(
    topology: Topology,
    a_asn: int,
    b_asn: int,
    model: DeploymentModel,
    *,
    capacity_bps: float = 10e9,
    scion_share: float = 0.5,
    expose_separate_links: bool = True,
    relationship: Relationship = Relationship.CORE,
) -> Tuple[List[LinkDeployment], List[int]]:
    """Wire two adjacent ISPs into the topology under a deployment model.

    Returns the link deployments and the topology link ids created. A
    redundant deployment exposed as separate links yields two SCION
    interfaces ("enabling multipath selection for either of the links");
    collapsed, it yields one logical link.
    """
    deployments: List[LinkDeployment] = []
    link_ids: List[int] = []

    def add(deployment: LinkDeployment, location: str) -> None:
        deployments.append(deployment)
        link = topology.add_link(
            a_asn, b_asn, relationship, location=location
        )
        link_ids.append(link.link_id)

    if model is DeploymentModel.NATIVE:
        add(LinkDeployment(DeploymentModel.NATIVE, capacity_bps), "xconn")
    elif model is DeploymentModel.ROUTER_ON_A_STICK:
        add(
            LinkDeployment(
                DeploymentModel.ROUTER_ON_A_STICK,
                capacity_bps,
                scion_share=scion_share,
            ),
            "legacy-stick",
        )
    else:
        native = LinkDeployment(DeploymentModel.NATIVE, capacity_bps)
        stick = LinkDeployment(
            DeploymentModel.ROUTER_ON_A_STICK,
            capacity_bps,
            scion_share=scion_share,
        )
        if expose_separate_links:
            add(native, "xconn")
            add(stick, "legacy-stick")
        else:
            deployments.extend([native, stick])
            link = topology.add_link(
                a_asn, b_asn, relationship, location="redundant-logical"
            )
            link_ids.append(link.link_id)
    return deployments, link_ids
