"""IXP deployment models (Section 3.5, Figure 4).

Two ways an IXP appears in the SCION infrastructure:

* **big switch** — the IXP is a transparent L2 fabric facilitating
  bilateral peering links among its member ASes (SwissIX's dedicated SCION
  VLAN); the control plane sees only the member-to-member peering links;
* **exposed topology** — the IXP operates one SCION AS per site, the
  inter-site links become SCION core/peering links, and members attach to
  sites; members can then use SCION multi-path across the IXP's internal
  (including backup) links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..topology.model import Relationship, Topology

__all__ = ["big_switch_peering", "ExposedIXP"]


def big_switch_peering(
    topology: Topology,
    members: Sequence[int],
    *,
    location: str = "IXP",
) -> List[int]:
    """Create bilateral peering links among all IXP members.

    Returns the created link ids. Existing adjacencies are kept; the IXP
    only adds the missing bilateral links (the role of a SCION Peering
    Coordinator).
    """
    created: List[int] = []
    ordered = sorted(set(members))
    for i, a_asn in enumerate(ordered):
        for b_asn in ordered[i + 1 :]:
            already = any(
                link.location == location
                for link in topology.links_between(a_asn, b_asn)
            )
            if already:
                continue
            link = topology.add_link(
                a_asn, b_asn, Relationship.PEER_PEER, location=location
            )
            created.append(link.link_id)
    return created


@dataclass
class ExposedIXP:
    """An IXP exposing its internal multi-site topology (Figure 4)."""

    topology: Topology
    name: str = "ixp"
    site_asns: List[int] = field(default_factory=list)
    _member_links: Dict[int, List[int]] = field(default_factory=dict)

    def add_sites(
        self,
        count: int,
        *,
        first_asn: int,
        isd: int = 1,
        redundant_pairs: Sequence[Tuple[int, int]] = (),
    ) -> List[int]:
        """Create the IXP's site ASes and their inter-site links.

        Sites are ringed for base connectivity; ``redundant_pairs`` (site
        indices) add the backup links members can fail over to.
        """
        if count < 2:
            raise ValueError("an exposed IXP needs at least two sites")
        self.site_asns = list(range(first_asn, first_asn + count))
        for asn in self.site_asns:
            self.topology.add_as(
                asn, isd=isd, is_core=False, name=f"{self.name}-site"
            )
        for a_asn, b_asn in zip(
            self.site_asns, self.site_asns[1:] + self.site_asns[:1]
        ):
            if len(self.site_asns) == 2 and self.topology.links_between(a_asn, b_asn):
                break
            self.topology.add_link(
                a_asn, b_asn, Relationship.PEER_PEER,
                location=f"{self.name}-intersite",
            )
        for i, j in redundant_pairs:
            self.topology.add_link(
                self.site_asns[i],
                self.site_asns[j],
                Relationship.PEER_PEER,
                location=f"{self.name}-backup",
            )
        return list(self.site_asns)

    def attach_member(self, member_asn: int, site_index: int) -> int:
        """Peer a member AS with one IXP site; returns the link id."""
        if not self.site_asns:
            raise ValueError("add_sites() first")
        site = self.site_asns[site_index]
        link = self.topology.add_link(
            member_asn, site, Relationship.PEER_PEER,
            location=f"{self.name}-port",
        )
        self._member_links.setdefault(member_asn, []).append(link.link_id)
        return link.link_id

    def member_links(self, member_asn: int) -> List[int]:
        return list(self._member_links.get(member_asn, []))

    def internal_link_ids(self) -> List[int]:
        sites = set(self.site_asns)
        return [
            link.link_id
            for link in self.topology.links()
            if link.a.asn in sites and link.b.asn in sites
        ]
