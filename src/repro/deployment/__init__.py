"""Deployment models from Section 3: ISP links, SIGs, IXPs, economics."""

from .leased_line import ConnectivityRequirement, CostComparison, compare_costs
from .isp import (
    IP_ENCAPSULATION_OVERHEAD_BYTES,
    DeploymentModel,
    LinkDeployment,
    deploy_adjacent_isps,
)
from .sig import ASMap, CarrierGradeSIG, IPPacket, ScionIPGateway
from .ixp import ExposedIXP, big_switch_peering

__all__ = [
    "ConnectivityRequirement",
    "CostComparison",
    "compare_costs",
    "IP_ENCAPSULATION_OVERHEAD_BYTES",
    "DeploymentModel",
    "LinkDeployment",
    "deploy_adjacent_isps",
    "ASMap",
    "CarrierGradeSIG",
    "IPPacket",
    "ScionIPGateway",
    "ExposedIXP",
    "big_switch_peering",
]
