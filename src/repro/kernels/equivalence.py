"""The backend equivalence harness.

Runs the same workload once per kernel backend and demands byte-identical
outputs — the enforcement arm of the contract in
:mod:`repro.kernels.base`. Three observation channels are compared:

* **results** — the pickled run result / beaconing metrics (pickle bytes
  capture values *and* container ordering, the same discipline the shard
  and process-pool determinism tests use);
* **paths** — the beacon stores' surviving paths per (AS, origin), since
  candidate scoring decides exactly which paths are disseminated;
* **telemetry** — the metrics registry snapshot plus the trace event
  stream with wall-clock fields (``ts``/``dur``) scrubbed; everything
  else (event kinds, ordering, counter values) must match.

Used by the property tests in ``tests/test_kernel_equivalence.py`` and
available to ad-hoc checks.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Telemetry
from . import available_backends

__all__ = [
    "EquivalenceReport",
    "compare_traffic",
    "compare_beaconing",
    "assert_equivalent",
]


@dataclass
class EquivalenceReport:
    """Outcome of one cross-backend comparison."""

    subject: str
    backends: Tuple[str, ...]
    #: Channel names that diverged from the first backend, per backend.
    mismatches: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.identical:
            return (
                f"{self.subject}: {', '.join(self.backends)} byte-identical"
            )
        parts = [
            f"{backend} diverges on {', '.join(channels)}"
            for backend, channels in sorted(self.mismatches.items())
        ]
        return f"{self.subject}: " + "; ".join(parts)


def _scrub_trace(events: Sequence[Dict]) -> List[Dict]:
    """Trace events minus wall-clock fields (the only permitted delta)."""
    return [
        {key: value for key, value in event.items() if key not in ("ts", "dur")}
        for event in events
    ]


def _diff(probes: Dict[str, Dict[str, bytes]]) -> Dict[str, Tuple[str, ...]]:
    backends = list(probes)
    reference = probes[backends[0]]
    mismatches: Dict[str, Tuple[str, ...]] = {}
    for backend in backends[1:]:
        bad = tuple(
            channel
            for channel, value in probes[backend].items()
            if value != reference[channel]
        )
        if bad:
            mismatches[backend] = bad
    return mismatches


def compare_traffic(
    topology,
    *,
    flow_config,
    traffic_config=None,
    algorithm: str = "diversity",
    params=None,
    core_config=None,
    intra_config=None,
    legacy_asns: Tuple[int, ...] = (),
    fault_plan=None,
    backends: Optional[Sequence[str]] = None,
) -> EquivalenceReport:
    """Full-stack traffic run (control plane + data plane) per backend."""
    from ..control.network import ScionNetwork
    from ..traffic.engine import TrafficConfig, TrafficEngine
    from ..traffic.flows import FlowGenerator

    backends = tuple(backends or available_backends())
    probes: Dict[str, Dict[str, bytes]] = {}
    for backend in backends:
        tel = Telemetry.collecting(labels={"harness": "equivalence"})
        network = ScionNetwork(
            topology,
            algorithm=algorithm,
            params=params,
            core_config=core_config,
            intra_config=intra_config,
            backend=backend,
            obs=tel,
        ).run()
        endpoints = sorted(topology.non_core_asns())
        engine = TrafficEngine(
            network,
            FlowGenerator(endpoints, flow_config),
            traffic_config or TrafficConfig(),
            legacy_asns=legacy_asns,
            obs=tel,
            backend=backend,
        )
        result = engine.run(fault_plan)
        probes[backend] = {
            "results": pickle.dumps(result),
            "telemetry": pickle.dumps(tel.metrics.snapshot()),
            "trace": pickle.dumps(_scrub_trace(tel.trace.events)),
        }
    return EquivalenceReport(
        subject="traffic",
        backends=backends,
        mismatches=_diff(probes),
    )


def compare_beaconing(
    topology,
    config=None,
    *,
    algorithm: str = "diversity",
    dissemination_limit: int = 5,
    params=None,
    backends: Optional[Sequence[str]] = None,
) -> EquivalenceReport:
    """One beaconing simulation per backend: metrics, surviving stored
    paths, and telemetry must all match."""
    from ..simulation.beaconing import (
        BeaconingSimulation,
        baseline_factory,
        diversity_factory,
    )

    backends = tuple(backends or available_backends())
    probes: Dict[str, Dict[str, bytes]] = {}
    for backend in backends:
        if algorithm == "baseline":
            factory = baseline_factory(dissemination_limit)
        else:
            factory = diversity_factory(
                dissemination_limit, params, kernel=backend
            )
        tel = Telemetry.collecting(labels={"harness": "equivalence"})
        sim = BeaconingSimulation(topology, factory, config, obs=tel)
        sim.run()
        stored = {
            asn: {
                origin: [
                    pcb.link_ids()
                    for pcb in server.store.beacons(origin, sim.now)
                ]
                for origin in server.store.origins()
            }
            for asn, server in sorted(sim.servers.items())
        }
        probes[backend] = {
            "results": pickle.dumps(sim.metrics),
            "paths": pickle.dumps(stored),
            "telemetry": pickle.dumps(tel.metrics.snapshot()),
            "trace": pickle.dumps(_scrub_trace(tel.trace.events)),
        }
    return EquivalenceReport(
        subject=f"beaconing[{algorithm}]",
        backends=backends,
        mismatches=_diff(probes),
    )


def assert_equivalent(reports: Sequence[EquivalenceReport]) -> None:
    """Raise AssertionError listing every report that diverged."""
    broken = [report for report in reports if not report.identical]
    if broken:
        raise AssertionError(
            "; ".join(report.render() for report in broken)
        )
