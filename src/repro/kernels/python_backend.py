"""The pure-Python reference backend.

This is the semantics oracle: it drives each packet through the border
routers exactly like the pre-kernel engine did (per-packet
``deliver_packet`` with chained per-hop MAC verification) and scores
beaconing candidates with the scalar Link History Table calls. Every
other backend must match its outputs byte for byte.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..dataplane.router import ForwardingError
from .base import KernelBackend

__all__ = ["PythonBackend"]


class PythonBackend(KernelBackend):
    """Reference implementation: scalar loops, no dependencies."""

    name = "python"

    def deliver_flow(
        self, routers, packet, count, *, now, profiler=None
    ) -> Tuple[int, int]:
        delivered = 0
        hops = 0
        for _ in range(count):
            try:
                if profiler is not None:
                    with profiler.sample("traffic.forward_packet"):
                        _, traversed = routers.deliver_packet(packet, now=now)
                else:
                    _, traversed = routers.deliver_packet(packet, now=now)
            except ForwardingError:
                break
            delivered += 1
            hops = len(traversed)
        return delivered, hops

    def batch_diversity(
        self, table, rows: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int, float]]:
        return [
            (
                table.version(row),
                sum(table.counter(link_id) for link_id in row),
                table.geometric_mean(row),
            )
            for row in rows
        ]
