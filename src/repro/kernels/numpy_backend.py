"""The NumPy batched backend.

Two ideas, both exploiting that router and table state never change
inside the loops being replaced:

* **Forwarding** — all packets of a flow are identical and router state
  is immutable within a run, so the per-packet hop walk is redundant:
  the path is validated *once* in struct-of-arrays form (column-wise
  expiry scan, single chained-MAC digest comparison) and the outcome is
  multiplied by the packet count. Validations are further memoized per
  ``(path, endpoints, now)`` across flows.

* **Scoring** — a candidate batch shares most of its links (every
  beacon × egress-link row repeats the beacon's path links), so the
  table is gathered once per *unique* link into columns (counter,
  version, log counter) and the per-row version/counter sums run as
  vectorized integer reductions.

Bit-exactness note: integer reductions are order-independent, but
float reductions are not, and NumPy's pairwise summation disagrees with
left-to-right scalar accumulation beyond 8 elements. The geometric-mean
log sums therefore accumulate left-to-right in Python over the
pre-gathered ``math.log`` column — same values, same order, same bits
as :meth:`~repro.core.link_history.LinkHistoryTable.geometric_mean`.
"""

from __future__ import annotations

import hmac
import math
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..dataplane.hopfield import MAC_BYTES, compute_mac
from .base import KernelBackend
from .soa import HopFieldSoA, pad_rows

__all__ = ["NumpyBackend"]

_ZERO_MAC = b"\x00" * MAC_BYTES


class NumpyBackend(KernelBackend):
    """Batched implementation over struct-of-arrays columns."""

    name = "numpy"

    #: Bound on the per-run flow-validation memo (entries are tiny; the
    #: bound only guards pathological workloads).
    cache_capacity = 8192

    def __init__(self) -> None:
        self._flow_cache: "OrderedDict[Tuple, Tuple[bool, int]]" = OrderedDict()
        self._cache_routers = None

    # Memo state is a pure accelerator — never ship it in snapshots.
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__init__()

    # ---------------------------------------------------------- forwarding

    def deliver_flow(
        self, routers, packet, count, *, now, profiler=None
    ) -> Tuple[int, int]:
        if self._cache_routers is not routers:
            # New topology / router table: previous validations are void.
            self._flow_cache.clear()
            self._cache_routers = routers
        key = (
            packet.path.timestamp,
            packet.path.hop_fields,
            packet.source.asn,
            packet.destination.asn,
            now,
        )
        cached = self._flow_cache.get(key)
        if cached is None:
            if profiler is not None:
                with profiler.sample("traffic.forward_packet"):
                    cached = self._validate(routers, packet, now)
            else:
                cached = self._validate(routers, packet, now)
            self._flow_cache[key] = cached
            if len(self._flow_cache) > self.cache_capacity:
                self._flow_cache.popitem(last=False)
        else:
            self._flow_cache.move_to_end(key)
        ok, hops = cached
        return (count if ok else 0), hops

    def _validate(self, routers, packet, now: float) -> Tuple[bool, int]:
        """One struct-of-arrays pass over the checks a border-router walk
        performs; the boolean outcome (and traversed-hop count) is what
        the reference per-packet loop would produce for every packet of
        the flow. Check *order* differs from the scalar walk, which is
        unobservable: any failed check drops the whole flow."""
        path = packet.path
        start = path.cursor
        soa = HopFieldSoA.from_hop_fields(path.hop_fields[start:])
        if not len(soa) or soa.asns[0] != packet.source.asn:
            return False, 0
        egress = np.asarray(soa.egress, dtype=np.int64)
        terminal = np.flatnonzero(egress == 0)
        if terminal.size == 0:
            # The walk runs off the end of the path ("already consumed").
            return False, 0
        # Hops past the first egress-0 field are never visited (the walk
        # terminates there), so they are exempt from every check.
        hops = int(terminal[0]) + 1
        if soa.asns[hops - 1] != packet.destination.asn:
            return False, 0
        expiry = np.asarray(soa.expiry[:hops], dtype=np.float64)
        if bool((expiry <= now).any()):
            return False, 0
        # Interface walk: each hop must sit at the AS the previous egress
        # link leads to, and that link must exist.
        topology = routers.topology
        current = packet.source.asn
        for index in range(hops):
            if soa.asns[index] != current:
                return False, 0
            if index < hops - 1:
                link = topology.as_node(current).interfaces.get(
                    soa.egress[index]
                )
                if link is None:
                    return False, 0
                current = link.other(current)
        # Chained MACs: recompute the whole chain, compare once.
        prev = path.hop_fields[start - 1].mac if start else _ZERO_MAC
        expected = bytearray()
        for index in range(hops):
            expected += compute_mac(
                routers.forwarding_key(soa.asns[index]),
                path.timestamp,
                soa.ingress[index],
                soa.egress[index],
                soa.expiry[index],
                prev,
            )
            prev = soa.mac(index)
        if not hmac.compare_digest(
            bytes(expected), soa.macs[: hops * MAC_BYTES]
        ):
            return False, 0
        return True, hops

    # ------------------------------------------------------------- scoring

    def batch_diversity(
        self, table, rows: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, int, float]]:
        if not rows:
            return []
        # Gather the table once per unique link into parallel columns.
        slot: Dict[int, int] = {}
        counts: List[int] = []
        versions: List[int] = []
        logs: List[float] = []
        zeros: List[bool] = []
        for row in rows:
            for link_id in row:
                if link_id not in slot:
                    slot[link_id] = len(counts)
                    count = table.counter(link_id)
                    counts.append(count)
                    versions.append(table.version((link_id,)))
                    logs.append(math.log(count) if count else 0.0)
                    zeros.append(count == 0)
        # Neutral pad slot: contributes 0 to the sums, never flags a zero.
        pad = len(counts)
        counts.append(0)
        versions.append(0)
        zeros.append(False)
        matrix, _ = pad_rows(
            [tuple(slot[link_id] for link_id in row) for row in rows], pad
        )
        index = np.asarray(matrix, dtype=np.intp)
        version_sum = np.asarray(versions, dtype=np.int64)[index].sum(axis=1)
        counter_sum = np.asarray(counts, dtype=np.int64)[index].sum(axis=1)
        any_zero = np.asarray(zeros, dtype=bool)[index].any(axis=1)
        out: List[Tuple[int, int, float]] = []
        for i, row in enumerate(rows):
            if not row or any_zero[i]:
                gm = 0.0
            else:
                # Left-to-right accumulation over the cached log column:
                # bit-identical to the scalar geometric_mean.
                log_sum = 0.0
                for link_id in row:
                    log_sum += logs[slot[link_id]]
                gm = math.exp(log_sum / len(row))
            out.append((int(version_sum[i]), int(counter_sum[i]), gm))
        return out
