"""The kernel backend contract.

A :class:`KernelBackend` implements the three profiled hot loops of the
reproduction — per-flow packet forwarding over MAC-verified hop fields,
chained hop-field MAC verification, and beaconing candidate scoring over
Link History Tables — behind one interface, so the engines can swap a
pure-Python reference implementation for a batched (NumPy) one without
touching results.

Determinism contract (mirrors ``repro.shard``): every backend must
produce **byte-identical** metrics, selected paths, and telemetry
snapshots to the ``python`` reference backend. A backend is a pure
performance choice; it lives on task objects (never on cache-key-feeding
specs) and is enforced by the equivalence harness in
:mod:`repro.kernels.equivalence`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.link_history import LinkHistoryTable
    from ..dataplane.packet import ScionPacket
    from ..dataplane.router import RouterTable

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """One implementation of the profiled hot loops.

    Backends may keep private memo state (e.g. per-path validation
    caches), but that state must never be observable in results: a
    backend with a cold cache and one with a warm cache return the same
    values. State is dropped on pickling so warm-run snapshots stay
    backend-agnostic.
    """

    #: Registry name (``--backend`` value).
    name: str = ""

    @abstractmethod
    def deliver_flow(
        self,
        routers: "RouterTable",
        packet: "ScionPacket",
        count: int,
        *,
        now: float,
        profiler=None,
    ) -> Tuple[int, int]:
        """Forward ``count`` identical packets of one flow.

        Returns ``(delivered, hops)`` where ``delivered`` is the number
        of packets that reached the destination and ``hops`` the number
        of ASes each delivered packet traversed (source included; 0 when
        nothing was delivered). Router state is immutable within a run,
        so delivery is all-or-nothing per flow — exactly the semantics of
        the reference per-packet loop.

        ``profiler``, when given, receives ``traffic.forward_packet``
        samples around the forwarding work (wall-clock only; never part
        of the determinism contract).
        """

    @abstractmethod
    def batch_diversity(
        self,
        table: "LinkHistoryTable",
        rows: Sequence[Tuple[int, ...]],
    ) -> List[Tuple[int, int, float]]:
        """Score candidate link rows against one Link History Table.

        ``rows[i]`` is the counted-links tuple of candidate ``i`` (path
        links plus egress link). Returns, per row and bit-identical to
        the scalar table calls::

            (table.version(row),
             sum(table.counter(l) for l in row),
             table.geometric_mean(row))
        """
