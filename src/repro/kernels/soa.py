"""Struct-of-arrays layouts for the kernel backends.

The object graphs the engines operate on (tuples of frozen
:class:`~repro.dataplane.hopfield.HopField` dataclasses, per-candidate
link tuples) are convenient but force the hot loops into per-object
attribute chasing. The SoA forms here pack them into parallel columns —
one sequence per field, MACs in one contiguous byte string — which the
batched backend can turn into arrays, slice per-column, and compare in
single passes. Packing is lossless: ``to_hop_fields`` round-trips
exactly, which the unit tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..dataplane.hopfield import MAC_BYTES, HopField
from ..dataplane.packet import ForwardingPath

__all__ = ["HopFieldSoA", "pad_rows", "unpad_rows"]


@dataclass(frozen=True)
class HopFieldSoA:
    """The hop fields of one forwarding path, one column per field.

    ``macs`` concatenates the per-hop MACs (``MAC_BYTES`` each), so the
    whole chain can be compared against a recomputed chain with a single
    constant-time digest comparison.
    """

    asns: Tuple[int, ...]
    ingress: Tuple[int, ...]
    egress: Tuple[int, ...]
    expiry: Tuple[float, ...]
    macs: bytes

    @classmethod
    def from_hop_fields(cls, hop_fields: Sequence[HopField]) -> "HopFieldSoA":
        return cls(
            asns=tuple(hf.asn for hf in hop_fields),
            ingress=tuple(hf.ingress_ifid for hf in hop_fields),
            egress=tuple(hf.egress_ifid for hf in hop_fields),
            expiry=tuple(hf.expiry for hf in hop_fields),
            macs=b"".join(hf.mac for hf in hop_fields),
        )

    @classmethod
    def from_path(cls, path: ForwardingPath) -> "HopFieldSoA":
        return cls.from_hop_fields(path.hop_fields)

    def __len__(self) -> int:
        return len(self.asns)

    def mac(self, index: int) -> bytes:
        return self.macs[index * MAC_BYTES : (index + 1) * MAC_BYTES]

    def to_hop_fields(self) -> Tuple[HopField, ...]:
        """Unpack back into the AoS form (exact round-trip)."""
        return tuple(
            HopField(
                asn=self.asns[i],
                ingress_ifid=self.ingress[i],
                egress_ifid=self.egress[i],
                expiry=self.expiry[i],
                mac=self.mac(i),
            )
            for i in range(len(self))
        )


def pad_rows(
    rows: Sequence[Tuple[int, ...]], fill: int
) -> Tuple[List[List[int]], List[int]]:
    """Pack ragged candidate rows into a rectangular matrix.

    Returns ``(matrix, lengths)`` where every row is right-padded with
    ``fill`` to the width of the longest row. ``fill`` is the caller's
    sentinel (the batched scorer points it at a neutral pad slot).
    """
    width = max((len(row) for row in rows), default=0)
    matrix = [list(row) + [fill] * (width - len(row)) for row in rows]
    return matrix, [len(row) for row in rows]


def unpad_rows(
    matrix: Sequence[Sequence[int]], lengths: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Inverse of :func:`pad_rows` (exact round-trip)."""
    return [
        tuple(row[:length]) for row, length in zip(matrix, lengths)
    ]
