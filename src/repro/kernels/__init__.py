"""Pluggable kernel backends for the profiled hot loops.

``get_backend("python")`` returns the scalar reference implementation;
``get_backend("numpy")`` the batched struct-of-arrays one (requires the
optional ``numpy`` extra). Backends are byte-identical by contract —
see :mod:`repro.kernels.base` — and selected per run via ``--backend``
on the experiments CLI or the ``backend`` argument of
:class:`~repro.runtime.ExperimentRuntime`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .base import KernelBackend
from .python_backend import PythonBackend
from .soa import HopFieldSoA, pad_rows, unpad_rows

__all__ = [
    "KernelBackend",
    "PythonBackend",
    "HopFieldSoA",
    "pad_rows",
    "unpad_rows",
    "BACKEND_NAMES",
    "numpy_available",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

#: Every backend name the registry knows (available or not).
BACKEND_NAMES: Tuple[str, ...] = ("python", "numpy")

DEFAULT_BACKEND = "python"


def numpy_available() -> bool:
    """True when the optional ``numpy`` extra is installed."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """The backend names :func:`get_backend` can satisfy right now."""
    if numpy_available():
        return BACKEND_NAMES
    return ("python",)


def get_backend(name: str) -> KernelBackend:
    """Construct a fresh backend by registry name."""
    if name == "python":
        return PythonBackend()
    if name == "numpy":
        if not numpy_available():
            raise ValueError(
                "the numpy kernel backend needs the optional numpy extra "
                "(pip install 'repro[numpy]'); the python backend has no "
                "dependencies"
            )
        from .numpy_backend import NumpyBackend

        return NumpyBackend()
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from "
        f"{'|'.join(BACKEND_NAMES)}"
    )


def resolve_backend(
    backend: Union[KernelBackend, str, None]
) -> KernelBackend:
    """Coerce a backend spec (instance, name, or None) to an instance."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)
