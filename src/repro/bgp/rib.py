"""Routing information bases.

Each BGPsec speaker keeps an Adj-RIB-In per neighbor (all routes learned
from that neighbor) and a Loc-RIB (the selected best route per prefix). The
paper's configuration — "Within an AS, only the internal BGPsec speaker has
LOC_RIB, and border routers just forward traffic" — maps to one
:class:`~repro.bgp.speaker.Speaker` per AS here.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .policy import Route

__all__ = ["AdjRIBIn", "LocRIB"]


class AdjRIBIn:
    """Routes learned per (neighbor, prefix); newest replaces older."""

    def __init__(self) -> None:
        self._routes: Dict[Tuple[int, int], Route] = {}

    def update(self, route: Route) -> None:
        if route.neighbor is None:
            raise ValueError("Adj-RIB-In stores only learned routes")
        self._routes[(route.neighbor, route.prefix)] = route

    def withdraw(self, neighbor: int, prefix: int) -> Optional[Route]:
        return self._routes.pop((neighbor, prefix), None)

    def routes_for_prefix(self, prefix: int) -> List[Route]:
        return [
            route
            for (_, route_prefix), route in self._routes.items()
            if route_prefix == prefix
        ]

    def routes_from(self, neighbor: int) -> List[Route]:
        return [
            route
            for (route_neighbor, _), route in self._routes.items()
            if route_neighbor == neighbor
        ]

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())


class LocRIB:
    """Best selected route per prefix."""

    def __init__(self) -> None:
        self._best: Dict[int, Route] = {}

    def best(self, prefix: int) -> Optional[Route]:
        return self._best.get(prefix)

    def install(self, route: Route) -> bool:
        """Install a route; returns True if the best route changed."""
        current = self._best.get(route.prefix)
        if current == route:
            return False
        self._best[route.prefix] = route
        return True

    def remove(self, prefix: int) -> Optional[Route]:
        return self._best.pop(prefix, None)

    def prefixes(self) -> List[int]:
        return list(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._best.values())
