"""BGP UPDATE message sizing per RFC 4271.

The paper "calculate[s] the size of update messages based on the individual
field sizes defined in RFC 4271". An UPDATE carries:

* the 19-byte BGP message header;
* 2 bytes withdrawn-routes length (we model announcements only);
* 2 bytes total-path-attribute length;
* the path attributes shared by all prefixes of the update:
  ORIGIN (4 B), AS_PATH (3 B attribute header + 2 B segment header +
  4 B per ASN, RFC 6793 four-octet AS numbers), NEXT_HOP (7 B);
* one NLRI entry per announced prefix (1 B length + up to 4 B IPv4 prefix;
  we assume /24-ish prefixes, 4 B).

BGP aggregates prefixes sharing identical attributes into one UPDATE — the
amortization BGPsec loses (see :mod:`repro.bgp.bgpsec`).
"""

from __future__ import annotations

__all__ = [
    "BGP_HEADER_BYTES",
    "WITHDRAWN_LEN_BYTES",
    "PATH_ATTR_LEN_BYTES",
    "ORIGIN_ATTR_BYTES",
    "AS_PATH_ATTR_OVERHEAD_BYTES",
    "AS_NUMBER_BYTES",
    "NEXT_HOP_ATTR_BYTES",
    "NLRI_BYTES",
    "bgp_update_size",
]

BGP_HEADER_BYTES = 19
WITHDRAWN_LEN_BYTES = 2
PATH_ATTR_LEN_BYTES = 2
#: Attribute header (flags 1 + type 1 + length 1) + 1 B origin code.
ORIGIN_ATTR_BYTES = 4
#: Attribute header (3) + path segment type/length (2).
AS_PATH_ATTR_OVERHEAD_BYTES = 5
AS_NUMBER_BYTES = 4
#: Attribute header (3) + IPv4 next hop (4).
NEXT_HOP_ATTR_BYTES = 7
#: NLRI length octet + a /24-ish prefix.
NLRI_BYTES = 5


def bgp_update_size(as_path_length: int, num_prefixes: int = 1) -> int:
    """Bytes of one UPDATE announcing ``num_prefixes`` prefixes over an
    AS path of ``as_path_length`` ASes."""
    if as_path_length < 1:
        raise ValueError("an announced route has at least the origin AS")
    if num_prefixes < 1:
        raise ValueError("an UPDATE announces at least one prefix")
    return (
        BGP_HEADER_BYTES
        + WITHDRAWN_LEN_BYTES
        + PATH_ATTR_LEN_BYTES
        + ORIGIN_ATTR_BYTES
        + AS_PATH_ATTR_OVERHEAD_BYTES
        + AS_NUMBER_BYTES * as_path_length
        + NEXT_HOP_ATTR_BYTES
        + NLRI_BYTES * num_prefixes
    )
