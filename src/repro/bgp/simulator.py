"""Event-driven BGP/BGPsec convergence simulation.

Mirrors the paper's SimBGP configuration (Section 5.1): one internal
BGP(sec) speaker per AS, a 15-second MRAI timer per session, and a 5 ms
processing delay per incoming update message. Every AS originates one
prefix; per-origin overheads are later weighted by the number of prefixes
the AS announces (exactly the paper's "we multiply the overhead for each
destination prefix by the number of prefixes its AS announces").

The simulation runs to convergence (BGP with Gao-Rexford preferences and
shortest-path tie-breaking is safe, so the event queue drains) and exposes:

* per-AS update counts — total and per origin AS;
* the converged best AS path per (AS, origin) pair;
* BGP multipath sets: all equally-preferred routes per pair, the paper's
  "best possible case for BGP ... assuming full BGP multi-path support".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..simulation.engine import Simulator
from ..topology.model import Relationship, Topology
from .policy import NeighborKind
from .speaker import Advertisement, Speaker

__all__ = ["BGPConfig", "BGPSimulation"]


@dataclass(frozen=True)
class BGPConfig:
    """Timing of the convergence simulation (paper defaults)."""

    mrai: float = 15.0
    processing_delay: float = 0.005
    link_delay: float = 0.01
    #: Safety horizon; the queue normally drains long before.
    max_time: float = 24 * 3600.0

    def __post_init__(self) -> None:
        if self.mrai < 0 or self.processing_delay < 0 or self.link_delay <= 0:
            raise ValueError("invalid BGP timing configuration")


def _neighbor_kind(topology: Topology, asn: int, neighbor: int) -> NeighborKind:
    """Classify ``neighbor`` from ``asn``'s point of view.

    CORE links (between SCION core ASes) count as peering — the closest BGP
    equivalent of a settlement-free core mesh.
    """
    kinds: Set[NeighborKind] = set()
    for link in topology.links_between(asn, neighbor):
        if link.relationship is Relationship.PROVIDER_CUSTOMER:
            kinds.add(
                NeighborKind.CUSTOMER
                if link.is_provider(asn)
                else NeighborKind.PROVIDER
            )
        else:
            kinds.add(NeighborKind.PEER)
    # A multi-relationship adjacency (rare, exists in inferred data) uses
    # the most preferred role.
    return min(kinds)


class BGPSimulation:
    """Full-mesh-of-prefixes BGP convergence over an AS topology."""

    def __init__(
        self, topology: Topology, config: Optional[BGPConfig] = None
    ) -> None:
        self.topology = topology
        self.config = config or BGPConfig()
        self.simulator = Simulator()
        self.speakers: Dict[int, Speaker] = {}
        self._busy_until: Dict[int, float] = {}
        self._mrai_timer_armed: Dict[Tuple[int, int], bool] = {}
        for asn in topology.asns():
            neighbors = {
                neighbor: _neighbor_kind(topology, asn, neighbor)
                for neighbor in topology.neighbors(asn)
            }
            self.speakers[asn] = Speaker(
                asn, neighbors, mrai=self.config.mrai
            )
            self._busy_until[asn] = 0.0
        self.converged = False

    # ------------------------------------------------------------------ run

    def run(
        self, extra_originations: Sequence[Tuple[int, int]] = ()
    ) -> "BGPSimulation":
        """Originate every prefix and run to convergence.

        ``extra_originations`` is a sequence of ``(asn, prefix)`` pairs
        announced *in addition* to every AS's own prefix — the hook for
        prefix-hijack scenarios, where an attacker originates a victim's
        prefix and the converged ``best_path`` origins show which ASes
        were deceived.
        """
        extra: Dict[int, List[int]] = {}
        for asn, prefix in extra_originations:
            if asn not in self.speakers:
                raise ValueError(f"unknown originating AS {asn}")
            extra.setdefault(asn, []).append(prefix)
        for asn in sorted(self.speakers):
            speaker = self.speakers[asn]
            speaker.originate(asn)
            speaker.enqueue(asn)
            for prefix in extra.get(asn, ()):
                speaker.originate(prefix)
                speaker.enqueue(prefix)
            self._schedule_flushes(speaker)
        self.simulator.run(until=self.config.max_time)
        self.converged = len(self.simulator.queue) == 0
        return self

    def _schedule_flushes(self, speaker: Speaker) -> None:
        for neighbor in sorted(speaker.neighbors):
            if not speaker.pending_for(neighbor):
                continue
            key = (speaker.asn, neighbor)
            if self._mrai_timer_armed.get(key):
                continue
            ready = max(self.simulator.now, speaker.mrai_ready_at(neighbor))
            self._mrai_timer_armed[key] = True
            self.simulator.schedule_at(
                ready, lambda s=speaker, n=neighbor: self._flush(s, n)
            )

    def _flush(self, speaker: Speaker, neighbor: int) -> None:
        self._mrai_timer_armed[(speaker.asn, neighbor)] = False
        advertisements = speaker.flush(neighbor, self.simulator.now)
        for advertisement in advertisements:
            self._deliver(advertisement)
        # Changes enqueued while the timer ran need a new timer.
        if speaker.pending_for(neighbor):
            self._schedule_flushes(speaker)

    def _deliver(self, advertisement: Advertisement) -> None:
        receiver = self.speakers[advertisement.receiver]
        arrival = self.simulator.now + self.config.link_delay
        processed_at = (
            max(arrival, self._busy_until[receiver.asn])
            + self.config.processing_delay
        )
        self._busy_until[receiver.asn] = processed_at
        self.simulator.schedule_at(
            processed_at,
            lambda: self._process(receiver, advertisement),
        )

    def _process(self, receiver: Speaker, advertisement: Advertisement) -> None:
        changed = receiver.receive(advertisement)
        if changed:
            receiver.enqueue(advertisement.prefix)
            self._schedule_flushes(receiver)

    # -------------------------------------------------------------- queries

    def best_path(self, asn: int, origin: int) -> Optional[Tuple[int, ...]]:
        """Converged best AS path from ``asn`` to ``origin`` (origin-first),
        or None if unreachable under Gao-Rexford policies."""
        if asn == origin:
            return (origin,)
        best = self.speakers[asn].loc_rib.best(origin)
        if best is None:
            return None
        return best.as_path + (asn,)

    def multipath_routes(self, asn: int, origin: int) -> List[Tuple[int, ...]]:
        """All equally-preferred AS paths (full multipath support): routes
        tying with the best on (relationship class, AS-path length)."""
        speaker = self.speakers[asn]
        best = speaker.loc_rib.best(origin)
        if best is None:
            return [(origin,)] if asn == origin else []
        candidates = speaker.adj_rib_in.routes_for_prefix(origin)
        if best.is_self_originated:
            candidates.append(best)
        key = best.preference_key()[:2]  # ignore the neighbor tie-break
        return sorted(
            route.as_path + (asn,)
            for route in candidates
            if route.preference_key()[:2] == key
        )

    def multipath_links(self, asn: int, origin: int) -> List[int]:
        """All link ids usable by BGP multipath between the pair: every
        parallel link of every adjacency on every equally-preferred path."""
        link_ids: Set[int] = set()
        for as_path in self.multipath_routes(asn, origin):
            for a, b in zip(as_path, as_path[1:]):
                for link in self.topology.links_between(a, b):
                    link_ids.add(link.link_id)
        return sorted(link_ids)

    def updates_received(self, asn: int) -> int:
        return self.speakers[asn].updates_received

    def updates_received_by_origin(self, asn: int) -> Dict[int, int]:
        return dict(self.speakers[asn].received_by_origin)

    def total_updates(self) -> int:
        return sum(s.updates_received for s in self.speakers.values())
