"""Monthly BGP/BGPsec overhead models (the RouteViews substitution).

The paper reads BGP's monthly per-monitor overhead directly from the
RouteViews update archive, and derives BGPsec's by simulating convergence
and "assuming a re-beaconing period of one day, the resulting overhead is
multiplied by 30". Without the archive we model both from the *same*
convergence simulation, keeping the comparison internally consistent:

* **BGP** — each origin AS experiences a heavy-tailed number of routing
  events (flaps, policy changes) per month; every event replays the
  origin's convergence update sequence at each monitor, one plain
  RFC 4271-sized update per affected prefix (flap updates are per-prefix;
  they do not enjoy table-transfer aggregation). The default event rate
  (about a dozen per origin per month) reproduces the well-known few-KB
  per prefix per month volume that RouteViews monitors observe.
* **BGPsec** — exactly the paper's model: a daily full re-announcement of
  every prefix, each carried in its own fully signed RFC 8205 update,
  multiplied by 30.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Dict, Mapping

from .bgpsec import bgpsec_update_size
from .messages import bgp_update_size
from .simulator import BGPSimulation

__all__ = ["BGPChurnModel", "monthly_bgp_bytes", "monthly_bgpsec_bytes"]


@dataclass(frozen=True)
class BGPChurnModel:
    """Heavy-tailed per-origin routing-event rate."""

    #: RouteViews collectors digest on the order of 100 updates per prefix
    #: per month (path exploration included); with the ~2-3x exploration
    #: amplification the convergence replay adds per event, ~40 events per
    #: origin per month reproduces that volume.
    mean_events_per_month: float = 40.0
    sigma: float = 1.0
    seed: int = 0

    def rng(self, origin: int) -> Random:
        """The explicit per-origin RNG: every random draw of the churn
        model flows through here, seeded by (model seed, origin), so event
        counts are reproducible per origin and independent of call order
        or any global :mod:`random` state."""
        return Random((self.seed << 32) ^ origin)

    def events_per_month(self, origin: int) -> float:
        """Deterministic monthly event count for one origin AS."""
        if self.mean_events_per_month <= 0:
            raise ValueError("mean_events_per_month must be positive")
        rng = self.rng(origin)
        # Lognormal with the configured mean: E[exp(N(mu, sigma))] = mean.
        mu = math.log(self.mean_events_per_month) - self.sigma**2 / 2.0
        return math.exp(rng.gauss(mu, self.sigma))


def _path_length(simulation: BGPSimulation, monitor: int, origin: int) -> int:
    path = simulation.best_path(monitor, origin)
    return len(path) if path else 1


def monthly_bgp_bytes(
    simulation: BGPSimulation,
    monitor: int,
    prefix_counts: Mapping[int, int],
    model: BGPChurnModel,
) -> float:
    """Modeled monthly BGP update bytes received by ``monitor``."""
    received = simulation.updates_received_by_origin(monitor)
    total = 0.0
    for origin, convergence_updates in received.items():
        if origin == monitor:
            continue
        prefixes = prefix_counts.get(origin, 1)
        size = bgp_update_size(_path_length(simulation, monitor, origin))
        events = model.events_per_month(origin)
        total += convergence_updates * events * prefixes * size
    return total


def monthly_bgpsec_bytes(
    simulation: BGPSimulation,
    monitor: int,
    prefix_counts: Mapping[int, int],
    *,
    reannouncements_per_month: float = 30.0,
) -> float:
    """Modeled monthly BGPsec bytes: daily signed full re-announcement.

    Per origin: the monitor's converged update count for that origin
    (path exploration included), one RFC 8205 update per prefix, times the
    monthly re-announcement count (the paper's x30).
    """
    if reannouncements_per_month <= 0:
        raise ValueError("reannouncements_per_month must be positive")
    received = simulation.updates_received_by_origin(monitor)
    total = 0.0
    for origin, convergence_updates in received.items():
        if origin == monitor:
            continue
        prefixes = prefix_counts.get(origin, 1)
        size = bgpsec_update_size(_path_length(simulation, monitor, origin))
        total += (
            convergence_updates * prefixes * size * reannouncements_per_month
        )
    return total
