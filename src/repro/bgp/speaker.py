"""A BGP(sec) speaker: decision process, export filters, MRAI batching.

One speaker per AS, mirroring the paper's SimBGP setup in which "only the
internal BGPsec speaker has LOC_RIB, and border routers just forward traffic
between the interfaces": border routers contribute no control-plane state,
so the AS graph is the session graph.

Per-neighbor Minimum Route Advertisement Interval (MRAI) timers batch
advertisements: when a best route changes while the timer runs, the prefix
joins the neighbor's pending set and is advertised when the timer fires
(the paper configures 15-second MRAI timers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .policy import NeighborKind, Route, may_export
from .rib import AdjRIBIn, LocRIB

__all__ = ["Advertisement", "Speaker"]


@dataclass(frozen=True)
class Advertisement:
    """An UPDATE on the wire: one prefix, the advertised AS path."""

    sender: int
    receiver: int
    prefix: int
    as_path: Tuple[int, ...]


class Speaker:
    """The control-plane state of one AS."""

    def __init__(
        self,
        asn: int,
        neighbors: Dict[int, NeighborKind],
        *,
        mrai: float = 15.0,
    ) -> None:
        self.asn = asn
        self.neighbors = dict(neighbors)
        self.mrai = mrai
        self.adj_rib_in = AdjRIBIn()
        self.loc_rib = LocRIB()
        #: Next time an advertisement to the neighbor is allowed.
        self._mrai_ready_at: Dict[int, float] = {n: 0.0 for n in neighbors}
        #: Prefixes awaiting the neighbor's MRAI timer.
        self._pending: Dict[int, Set[int]] = {n: set() for n in neighbors}
        #: Per-prefix path last advertised to the neighbor (dedup).
        self._advertised: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self.updates_received = 0
        self.updates_sent = 0
        #: Received update count per origin AS (first AS of the path).
        self.received_by_origin: Dict[int, int] = {}

    # ----------------------------------------------------------- origination

    def originate(self, prefix: int) -> bool:
        """Install a self-originated route; returns True if LocRIB changed."""
        route = Route(prefix=prefix, as_path=(self.asn,), neighbor=None)
        return self.loc_rib.install(route)

    # -------------------------------------------------------------- receive

    def receive(self, advertisement: Advertisement) -> bool:
        """Process one incoming UPDATE; returns True if the best route for
        the prefix changed (and neighbors may need to be told)."""
        self.updates_received += 1
        origin = advertisement.as_path[0]
        self.received_by_origin[origin] = (
            self.received_by_origin.get(origin, 0) + 1
        )
        if self.asn in advertisement.as_path:
            return False  # loop detection: discard
        kind = self.neighbors.get(advertisement.sender)
        if kind is None:
            raise ValueError(
                f"AS {self.asn} received update from non-neighbor "
                f"{advertisement.sender}"
            )
        route = Route(
            prefix=advertisement.prefix,
            as_path=advertisement.as_path,
            neighbor=advertisement.sender,
            learned_from=kind,
        )
        self.adj_rib_in.update(route)
        return self._decide(advertisement.prefix)

    def _decide(self, prefix: int) -> bool:
        """Best-path selection for one prefix."""
        candidates: List[Route] = self.adj_rib_in.routes_for_prefix(prefix)
        current = self.loc_rib.best(prefix)
        if current is not None and current.is_self_originated:
            candidates.append(current)
        if not candidates:
            return self.loc_rib.remove(prefix) is not None
        best = min(candidates, key=lambda route: route.preference_key())
        return self.loc_rib.install(best)

    # --------------------------------------------------------------- export

    def exportable_neighbors(self, prefix: int) -> List[int]:
        """Neighbors the current best route may be advertised to."""
        best = self.loc_rib.best(prefix)
        if best is None:
            return []
        out = []
        for neighbor, kind in self.neighbors.items():
            if best.neighbor == neighbor:
                continue  # never advertise back to the next hop
            if may_export(best, kind):
                out.append(neighbor)
        return sorted(out)

    def enqueue(self, prefix: int) -> None:
        """Mark a changed prefix as pending towards all eligible neighbors."""
        for neighbor in self.exportable_neighbors(prefix):
            self._pending[neighbor].add(prefix)

    def mrai_ready_at(self, neighbor: int) -> float:
        return self._mrai_ready_at[neighbor]

    def pending_for(self, neighbor: int) -> Set[int]:
        return set(self._pending[neighbor])

    def flush(self, neighbor: int, now: float) -> List[Advertisement]:
        """Advertisements to emit to ``neighbor`` now (MRAI permitting).

        Resets the neighbor's MRAI timer if anything is sent. Prefixes whose
        best path did not change since the last advertisement to this
        neighbor are skipped.
        """
        if now < self._mrai_ready_at[neighbor]:
            return []
        pending = self._pending[neighbor]
        if not pending:
            return []
        advertisements: List[Advertisement] = []
        for prefix in sorted(pending):
            best = self.loc_rib.best(prefix)
            if best is None or neighbor not in self.exportable_neighbors(prefix):
                continue
            as_path = best.as_path + (self.asn,) if not (
                best.is_self_originated
            ) else (self.asn,)
            if self._advertised.get((neighbor, prefix)) == as_path:
                continue
            self._advertised[(neighbor, prefix)] = as_path
            advertisements.append(
                Advertisement(
                    sender=self.asn,
                    receiver=neighbor,
                    prefix=prefix,
                    as_path=as_path,
                )
            )
        pending.clear()
        if advertisements:
            self._mrai_ready_at[neighbor] = now + self.mrai
            self.updates_sent += len(advertisements)
        return advertisements
