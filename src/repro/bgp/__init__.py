"""BGP and BGPsec comparison substrate."""

from .messages import bgp_update_size, BGP_HEADER_BYTES, NLRI_BYTES
from .bgpsec import bgpsec_update_size, BGPSEC_SIGNATURE_BYTES
from .policy import NeighborKind, Route, may_export, prefer
from .rib import AdjRIBIn, LocRIB
from .speaker import Advertisement, Speaker
from .simulator import BGPConfig, BGPSimulation
from .prefixes import assign_prefix_counts
from .churn import BGPChurnModel, monthly_bgp_bytes, monthly_bgpsec_bytes
from .extrapolation import (
    OutsideOriginMapping,
    map_outside_origins,
    tier1_hop_distance,
)

__all__ = [
    "bgp_update_size",
    "BGP_HEADER_BYTES",
    "NLRI_BYTES",
    "bgpsec_update_size",
    "BGPSEC_SIGNATURE_BYTES",
    "NeighborKind",
    "Route",
    "may_export",
    "prefer",
    "AdjRIBIn",
    "LocRIB",
    "Advertisement",
    "Speaker",
    "BGPConfig",
    "BGPSimulation",
    "assign_prefix_counts",
    "BGPChurnModel",
    "monthly_bgp_bytes",
    "monthly_bgpsec_bytes",
    "OutsideOriginMapping",
    "map_outside_origins",
    "tier1_hop_distance",
]
