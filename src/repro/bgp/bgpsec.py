"""BGPsec update sizing per RFC 8205.

BGPsec replaces AS_PATH with the BGPsec_PATH attribute:

* Secure_Path: 2 B length + one 6 B Secure_Path segment per AS
  (pCount 1 B, flags 1 B, AS number 4 B);
* one Signature_Block: 2 B length + 1 B algorithm suite + one signature
  segment per AS (SKI 20 B + 2 B signature length + the signature itself).

The paper assumes ECDSA-384 signatures (96 B raw) for both SCION and
BGPsec. Crucially, RFC 8205 §4.1 forbids announcing more than one prefix
per BGPsec update ("the MP_REACH_NLRI attribute MUST NOT contain more than
one prefix"), so BGPsec loses BGP's NLRI aggregation entirely — one fully
signed update per prefix.
"""

from __future__ import annotations

from .messages import (
    BGP_HEADER_BYTES,
    NEXT_HOP_ATTR_BYTES,
    NLRI_BYTES,
    ORIGIN_ATTR_BYTES,
    PATH_ATTR_LEN_BYTES,
    WITHDRAWN_LEN_BYTES,
)

__all__ = [
    "SECURE_PATH_SEGMENT_BYTES",
    "SIGNATURE_SEGMENT_OVERHEAD_BYTES",
    "BGPSEC_SIGNATURE_BYTES",
    "BGPSEC_ATTR_OVERHEAD_BYTES",
    "bgpsec_update_size",
]

#: pCount (1) + flags (1) + AS number (4).
SECURE_PATH_SEGMENT_BYTES = 6
#: Subject key identifier (20) + signature length field (2).
SIGNATURE_SEGMENT_OVERHEAD_BYTES = 22
#: ECDSA-384 signature (the paper's assumption for SCION and BGPsec alike).
BGPSEC_SIGNATURE_BYTES = 96
#: BGPsec_PATH attribute header (3) + Secure_Path length (2) +
#: Signature_Block length (2) + algorithm suite id (1).
BGPSEC_ATTR_OVERHEAD_BYTES = 8


def bgpsec_update_size(as_path_length: int) -> int:
    """Bytes of one BGPsec update (exactly one prefix per RFC 8205 §4.1)."""
    if as_path_length < 1:
        raise ValueError("an announced route has at least the origin AS")
    per_as = (
        SECURE_PATH_SEGMENT_BYTES
        + SIGNATURE_SEGMENT_OVERHEAD_BYTES
        + BGPSEC_SIGNATURE_BYTES
    )
    return (
        BGP_HEADER_BYTES
        + WITHDRAWN_LEN_BYTES
        + PATH_ATTR_LEN_BYTES
        + ORIGIN_ATTR_BYTES
        + NEXT_HOP_ATTR_BYTES
        + BGPSEC_ATTR_OVERHEAD_BYTES
        + per_as * as_path_length
        + NLRI_BYTES
    )
