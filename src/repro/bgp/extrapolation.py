"""Extrapolating simulated overhead to a larger topology (§5.2).

The paper simulates BGPsec on the 12000-AS ``as-rel-geo`` topology and
extrapolates to the full ``as-rel`` Internet: "We assume that for a prefix
in AS A outside the AS-rel-geo topology, a router receives the same number
of update messages as for a prefix in A's lowest-tier provider within the
AS-rel-geo topology. Additionally, we assume that the routes originated
from A are longer than the routes originated from its lowest-tier provider
by their hop difference to their nearest Tier-1 provider."

This module implements exactly that mapping for any (full topology,
simulated sub-topology) pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..topology.model import Topology

__all__ = ["OutsideOriginMapping", "map_outside_origins", "tier1_hop_distance"]


@dataclass(frozen=True)
class OutsideOriginMapping:
    """How one AS outside the simulated topology is represented."""

    origin: int
    #: The lowest-tier provider of the origin inside the simulation.
    proxy: int
    #: How many AS hops longer the origin's routes are than the proxy's.
    extra_hops: int


def tier1_hop_distance(
    topology: Topology, asn: int, tier1: Set[int]
) -> Optional[int]:
    """Minimum provider-chain hops from ``asn`` up to any Tier-1 AS."""
    if asn in tier1:
        return 0
    seen = {asn}
    frontier = deque([(asn, 0)])
    while frontier:
        current, depth = frontier.popleft()
        for provider in topology.providers(current):
            if provider in tier1:
                return depth + 1
            if provider not in seen:
                seen.add(provider)
                frontier.append((provider, depth + 1))
    return None


def _lowest_tier_provider_inside(
    topology: Topology, origin: int, inside: Set[int], tier1: Set[int]
) -> Optional[int]:
    """Breadth-first up the provider hierarchy for the first AS inside the
    simulated topology; among same-depth candidates, prefer the one
    *furthest* from Tier-1 (the lowest tier)."""
    seen = {origin}
    frontier = deque([origin])
    while frontier:
        level = list(frontier)
        frontier.clear()
        candidates = []
        for current in level:
            for provider in sorted(topology.providers(current)):
                if provider in inside:
                    candidates.append(provider)
                elif provider not in seen:
                    seen.add(provider)
                    frontier.append(provider)
        if candidates:
            def tier_key(asn: int):
                distance = tier1_hop_distance(topology, asn, tier1)
                return (-(distance if distance is not None else 10**6), asn)

            return min(candidates, key=tier_key)
    return None


def map_outside_origins(
    full_topology: Topology,
    simulated_asns: Set[int],
    *,
    tier1: Optional[Set[int]] = None,
) -> Dict[int, OutsideOriginMapping]:
    """Map every AS of the full topology outside the simulation to its
    proxy and extra hop count. Origins with no provider path into the
    simulated topology are skipped (their prefixes are unreachable there).
    """
    if tier1 is None:
        tier1 = {
            asn
            for asn in full_topology.asns()
            if not full_topology.providers(asn)
        }
    mappings: Dict[int, OutsideOriginMapping] = {}
    for origin in sorted(full_topology.asns()):
        if origin in simulated_asns:
            continue
        proxy = _lowest_tier_provider_inside(
            full_topology, origin, simulated_asns, tier1
        )
        if proxy is None:
            continue
        origin_distance = tier1_hop_distance(full_topology, origin, tier1)
        proxy_distance = tier1_hop_distance(full_topology, proxy, tier1)
        if origin_distance is None or proxy_distance is None:
            extra = 1
        else:
            extra = max(0, origin_distance - proxy_distance)
        mappings[origin] = OutsideOriginMapping(
            origin=origin, proxy=proxy, extra_hops=extra
        )
    return mappings
