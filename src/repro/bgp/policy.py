"""Gao-Rexford routing policies.

The standard economic model of inter-domain routing, used by both the BGP
decision process and the export filters of our simulator:

* **Preference**: routes learned from customers are preferred over routes
  learned from peers, which are preferred over routes learned from
  providers; ties break on shorter AS path, then on lower neighbor ASN
  (a deterministic stand-in for router-id tie-breaking).
* **Export** (valley-freeness): routes learned from a customer are exported
  to everyone; routes learned from a peer or provider are exported only to
  customers. Own prefixes are exported to everyone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["NeighborKind", "Route", "prefer", "may_export"]


class NeighborKind(enum.IntEnum):
    """Business relationship of a neighbor, ordered by route preference."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True)
class Route:
    """A candidate route to ``prefix`` learned from ``neighbor``.

    ``as_path`` starts at the origin AS and ends at the AS that advertised
    the route to us (our neighbor). ``learned_from`` classifies that
    neighbor. Self-originated routes have ``neighbor is None``.
    """

    prefix: int
    as_path: Tuple[int, ...]
    neighbor: Optional[int]
    learned_from: NeighborKind = NeighborKind.CUSTOMER

    @property
    def is_self_originated(self) -> bool:
        return self.neighbor is None

    @property
    def path_length(self) -> int:
        return len(self.as_path)

    def preference_key(self) -> Tuple[int, int, int]:
        """Sort key: lower is better (Gao-Rexford, then path length, then
        deterministic neighbor tie-break)."""
        return (
            -1 if self.is_self_originated else int(self.learned_from),
            self.path_length,
            self.neighbor if self.neighbor is not None else -1,
        )


def prefer(a: Route, b: Route) -> Route:
    """The preferred of two routes to the same prefix."""
    if a.prefix != b.prefix:
        raise ValueError("cannot compare routes to different prefixes")
    return a if a.preference_key() <= b.preference_key() else b


def may_export(route: Route, to_neighbor: NeighborKind) -> bool:
    """Gao-Rexford export rule: does AS policy allow advertising ``route``
    to a neighbor of the given kind?"""
    if route.is_self_originated:
        return True
    if route.learned_from is NeighborKind.CUSTOMER:
        return True
    return to_neighbor is NeighborKind.CUSTOMER
