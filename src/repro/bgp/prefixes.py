"""Per-AS announced prefix counts.

The paper weighs per-prefix BGPsec overhead by "the number of prefixes its
AS announces", read from RouteViews. Without the dataset we sample a
deterministic heavy-tailed assignment: prefix counts in the real Internet
are strongly skewed and correlate with network size, which degree proxies.
"""

from __future__ import annotations

import math
import random
from typing import Dict

from ..topology.model import Topology

__all__ = ["assign_prefix_counts"]


def assign_prefix_counts(
    topology: Topology,
    *,
    mean: float = 10.0,
    sigma: float = 1.0,
    seed: int = 0,
) -> Dict[int, int]:
    """Deterministic prefix count per AS (>= 1).

    Counts follow ``degree-weight x lognormal`` noise, normalized so the
    topology-wide mean is approximately ``mean`` prefixes per AS.
    """
    if mean < 1.0:
        raise ValueError("mean prefix count must be >= 1")
    rng = random.Random(seed)
    raw: Dict[int, float] = {}
    for asn in sorted(topology.asns()):
        degree_weight = 1.0 + math.log1p(topology.degree(asn))
        noise = math.exp(rng.gauss(0.0, sigma))
        raw[asn] = degree_weight * noise
    scale = mean * len(raw) / sum(raw.values())
    return {asn: max(1, round(value * scale)) for asn, value in raw.items()}
