"""End-to-end path combination (Sections 2.2/2.3).

"Each end-to-end path consists of up to three path segments: core-path,
up-path, and down-path segments. ... Shortcut paths that avoid a core AS
are possible, if the up- and down-path contain the same AS, or if a peering
link is available between an AS in the up-path and an AS in the down-path
segment."

The combinator takes the segments an endpoint fetched and produces every
valid loop-free AS-level end-to-end path:

* **full combinations** up + core + down (or fewer segments when an
  endpoint sits in a core AS, or both endpoints share an ISD core);
* **shortcuts** crossing over at a common non-core AS of the up- and
  down-segments;
* **peering shortcuts** over a peering link between an up-segment AS and a
  down-segment AS (the combinator consults the topology for peering links;
  the production control plane embeds them in the PCBs — an equivalent
  information source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..control.segments import PathSegment, SegmentType
from ..topology.model import Relationship, Topology

__all__ = ["EndToEndPath", "combine_segments"]


@dataclass(frozen=True)
class EndToEndPath:
    """A forwarding-order AS-level path with its provenance."""

    asns: Tuple[int, ...]
    link_ids: Tuple[int, ...]
    expires_at: float
    is_shortcut: bool = False
    uses_peering: bool = False

    def __post_init__(self) -> None:
        if len(self.link_ids) != len(self.asns) - 1:
            raise ValueError("link_ids must align with consecutive AS pairs")

    @property
    def source(self) -> int:
        return self.asns[0]

    @property
    def destination(self) -> int:
        return self.asns[-1]

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    def is_loop_free(self) -> bool:
        return len(self.asns) == len(set(self.asns))


def _join(
    *parts: Tuple[Sequence[int], Sequence[int]],
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Concatenate (asns, link_ids) parts whose junction ASes coincide."""
    asns: List[int] = []
    links: List[int] = []
    for part_asns, part_links in parts:
        if not part_asns:
            return None
        if asns:
            if asns[-1] != part_asns[0]:
                return None
            asns.extend(part_asns[1:])
        else:
            asns.extend(part_asns)
        links.extend(part_links)
    return tuple(asns), tuple(links)


def _emit(
    results: List[EndToEndPath],
    seen: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    joined,
    expires_at: float,
    *,
    is_shortcut: bool = False,
    uses_peering: bool = False,
) -> None:
    if joined is None:
        return
    asns, link_ids = joined
    if len(asns) != len(set(asns)):
        return  # loop: crossing the same AS twice is forbidden
    key = (asns, link_ids)
    if key in seen:
        return
    seen.add(key)
    results.append(
        EndToEndPath(
            asns=asns,
            link_ids=link_ids,
            expires_at=expires_at,
            is_shortcut=is_shortcut,
            uses_peering=uses_peering,
        )
    )


def combine_segments(
    up_segments: Sequence[PathSegment],
    core_segments: Sequence[PathSegment],
    down_segments: Sequence[PathSegment],
    *,
    topology: Optional[Topology] = None,
    now: float = 0.0,
) -> List[EndToEndPath]:
    """All valid end-to-end paths from the given segments.

    ``up_segments`` run leaf->core (source side), ``core_segments`` run
    between core ASes in forwarding order (source core first), and
    ``down_segments`` run core->leaf (destination side). Any of the three
    lists may be empty: a core-AS source needs no up-segment, a core-AS
    destination no down-segment, and same-core pairs no core segment.
    Expired segments are skipped. Peering shortcuts need ``topology``.
    """
    ups = [s for s in up_segments if s.is_valid(now)]
    cores = [s for s in core_segments if s.is_valid(now)]
    downs = [s for s in down_segments if s.is_valid(now)]
    for segment, expected in (
        *((s, SegmentType.UP) for s in ups),
        *((s, SegmentType.CORE) for s in cores),
        *((s, SegmentType.DOWN) for s in downs),
    ):
        if segment.segment_type is not expected:
            raise ValueError(
                f"segment {segment.key()} used as {expected.value}"
            )

    results: List[EndToEndPath] = []
    seen: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()

    def expiry(*segments: PathSegment) -> float:
        return min(s.expires_at for s in segments)

    # ---- up + core + down -------------------------------------------------
    # A missing up (or down) segment is the *caller's* statement that the
    # source (destination) is a core AS — an empty input list, not a list
    # whose entries all expired.
    up_options: List[Optional[PathSegment]] = list(ups) if up_segments else [None]
    down_options: List[Optional[PathSegment]] = (
        list(downs) if down_segments else [None]
    )
    for core in cores:
        for up in up_options:
            if up is not None and up.last_asn != core.first_asn:
                continue
            for down in down_options:
                if down is not None and down.first_asn != core.last_asn:
                    continue
                parts = []
                segs = []
                if up is not None:
                    parts.append((up.asns, up.link_ids))
                    segs.append(up)
                parts.append((core.asns, core.link_ids))
                segs.append(core)
                if down is not None:
                    parts.append((down.asns, down.link_ids))
                    segs.append(down)
                _emit(results, seen, _join(*parts), expiry(*segs))

    # ---- up + down at the same core AS (no core segment) ------------------
    for up in ups:
        for down in downs:
            if up.last_asn == down.first_asn:
                _emit(
                    results,
                    seen,
                    _join((up.asns, up.link_ids), (down.asns, down.link_ids)),
                    expiry(up, down),
                )

    # ---- shortcut: common non-core AS in up and down ----------------------
    for up in ups:
        for down in downs:
            common = set(up.asns[:-1]) & set(down.asns[1:])
            for crossover in common:
                i = up.asns.index(crossover)
                j = down.asns.index(crossover)
                _emit(
                    results,
                    seen,
                    _join(
                        (up.asns[: i + 1], up.link_ids[:i]),
                        (down.asns[j:], down.link_ids[j:]),
                    ),
                    expiry(up, down),
                    is_shortcut=True,
                )

    # ---- peering shortcut --------------------------------------------------
    if topology is not None:
        for up in ups:
            for down in downs:
                for i, up_asn in enumerate(up.asns[:-1]):
                    for j, down_asn in enumerate(down.asns[1:], start=1):
                        if up_asn == down_asn:
                            continue
                        for link in topology.links_between(up_asn, down_asn):
                            if link.relationship is not Relationship.PEER_PEER:
                                continue
                            _emit(
                                results,
                                seen,
                                _join(
                                    (up.asns[: i + 1], up.link_ids[:i]),
                                    ((up_asn, down_asn), (link.link_id,)),
                                    (down.asns[j:], down.link_ids[j:]),
                                ),
                                expiry(up, down),
                                is_shortcut=True,
                                uses_peering=True,
                            )

    results.sort(key=lambda path: (path.num_links, path.asns, path.link_ids))
    return results
