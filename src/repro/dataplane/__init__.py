"""Data plane substrate: hop fields, packets, routers, path combination."""

from .hopfield import (
    HOP_FIELD_BYTES,
    INFO_FIELD_BYTES,
    MAC_BYTES,
    HopField,
    compute_mac,
    forwarding_key,
    make_hop_field,
)
from .packet import (
    ForwardingPath,
    HostAddress,
    ScionPacket,
    build_forwarding_path,
)
from .router import BorderRouter, ForwardingError, RouterTable, deliver
from .combinator import EndToEndPath, combine_segments

__all__ = [
    "HOP_FIELD_BYTES",
    "INFO_FIELD_BYTES",
    "MAC_BYTES",
    "HopField",
    "compute_mac",
    "forwarding_key",
    "make_hop_field",
    "ForwardingPath",
    "HostAddress",
    "ScionPacket",
    "build_forwarding_path",
    "BorderRouter",
    "ForwardingError",
    "RouterTable",
    "deliver",
    "EndToEndPath",
    "combine_segments",
]
