"""SCION packets and forwarding paths.

A forwarding path is the materialized packet-carried forwarding state: the
hop fields of an end-to-end AS-level path in forwarding order, chained MACs
included, plus a cursor the border routers advance. Host addressing is the
(ISD, AS, local address) 3-tuple of Section 2.1 — the local part is opaque
to inter-domain forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..topology.model import Topology
from .hopfield import (
    HOP_FIELD_BYTES,
    INFO_FIELD_BYTES,
    MAC_BYTES,
    HopField,
    make_hop_field,
)

__all__ = ["HostAddress", "ForwardingPath", "ScionPacket", "build_forwarding_path"]

#: Common header: version/flags (4), src+dst ISD-AS (16), lengths (4).
COMMON_HEADER_BYTES = 24
#: IPv4-sized local addresses on both ends.
LOCAL_ADDRESS_BYTES = 4


@dataclass(frozen=True)
class HostAddress:
    """The <ISD, AS, local address> 3-tuple."""

    isd: int
    asn: int
    local: str = "0.0.0.1"

    def __str__(self) -> str:
        return f"{self.isd}-{self.asn},{self.local}"


@dataclass(frozen=True)
class ForwardingPath:
    """Hop fields in forwarding order with a cursor."""

    timestamp: float
    hop_fields: Tuple[HopField, ...]
    cursor: int = 0

    def __post_init__(self) -> None:
        if not self.hop_fields:
            raise ValueError("a forwarding path needs at least one hop field")
        if not 0 <= self.cursor <= len(self.hop_fields):
            raise ValueError("cursor out of range")

    @property
    def current(self) -> HopField:
        if self.at_destination:
            raise ValueError("path already fully traversed")
        return self.hop_fields[self.cursor]

    @property
    def at_destination(self) -> bool:
        return self.cursor >= len(self.hop_fields)

    def advanced(self) -> "ForwardingPath":
        return replace(self, cursor=self.cursor + 1)

    def prev_mac(self) -> bytes:
        if self.cursor == 0:
            return b"\x00" * MAC_BYTES
        return self.hop_fields[self.cursor - 1].mac

    def asns(self) -> Tuple[int, ...]:
        return tuple(hf.asn for hf in self.hop_fields)

    def header_bytes(self) -> int:
        return INFO_FIELD_BYTES + HOP_FIELD_BYTES * len(self.hop_fields)


@dataclass(frozen=True)
class ScionPacket:
    """A data-plane packet carrying its forwarding state."""

    source: HostAddress
    destination: HostAddress
    path: ForwardingPath
    payload_bytes: int = 0

    def header_bytes(self) -> int:
        return (
            COMMON_HEADER_BYTES
            + 2 * LOCAL_ADDRESS_BYTES
            + self.path.header_bytes()
        )

    def wire_bytes(self) -> int:
        return self.header_bytes() + self.payload_bytes

    def with_path(self, path: ForwardingPath) -> "ScionPacket":
        return replace(self, path=path)


def build_forwarding_path(
    topology: Topology,
    asns: Sequence[int],
    link_ids: Sequence[int],
    *,
    timestamp: float,
    expiry: float,
) -> ForwardingPath:
    """Materialize hop fields (with chained MACs) for an AS-level path.

    ``asns`` is the forwarding-order AS sequence, ``link_ids`` the links
    between consecutive ASes. Interface ids are read from the topology; 0
    marks the endpoint sides.
    """
    if len(link_ids) != len(asns) - 1:
        raise ValueError("link_ids must align with consecutive AS pairs")
    hop_fields: List[HopField] = []
    prev_mac = b"\x00" * MAC_BYTES
    for index, asn in enumerate(asns):
        if index == 0:
            ingress = 0
        else:
            ingress = topology.link(link_ids[index - 1]).end(asn).ifid
        if index == len(asns) - 1:
            egress = 0
        else:
            egress = topology.link(link_ids[index]).end(asn).ifid
        hop = make_hop_field(
            asn,
            ingress,
            egress,
            timestamp=timestamp,
            expiry=expiry,
            prev_mac=prev_mac,
        )
        prev_mac = hop.mac
        hop_fields.append(hop)
    return ForwardingPath(timestamp=timestamp, hop_fields=tuple(hop_fields))
