"""Hop fields and packet-carried forwarding state (Section 2.3).

"The path segments contain compact hop-fields, that encode information
about which interfaces may be used to enter and leave an AS. The hop-fields
are cryptographically protected, preventing path alteration."

Each AS authenticates its hop field with a MAC computed under its local
forwarding key, chained over the previous hop field's MAC so that a hop
cannot be spliced into a different path. A keyed BLAKE2b truncated to 6
bytes stands in for the AES-CMAC of the production implementation — the
evaluation needs the *semantics* (alteration detection, chaining) and the
*size*, not the cipher.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "MAC_BYTES",
    "HOP_FIELD_BYTES",
    "INFO_FIELD_BYTES",
    "forwarding_key",
    "compute_mac",
    "HopField",
    "make_hop_field",
]

MAC_BYTES = 6
#: ingress (2) + egress (2) + expiry (1) + flags (1) + MAC (6).
HOP_FIELD_BYTES = 12
#: timestamp (4) + segment id (2) + flags/hop count (2).
INFO_FIELD_BYTES = 8


def forwarding_key(asn: int, secret: bytes = b"repro-forwarding") -> bytes:
    """Derive the AS-local forwarding key (toy KDF, deterministic)."""
    return hashlib.blake2b(
        asn.to_bytes(8, "big"), key=secret, digest_size=16
    ).digest()


def compute_mac(
    key: bytes,
    timestamp: float,
    ingress_ifid: int,
    egress_ifid: int,
    expiry: float,
    prev_mac: bytes,
) -> bytes:
    """Chained hop-field MAC.

    ``timestamp`` and ``expiry`` are hashed as full IEEE-754 doubles:
    hop fields differing only in fractional seconds must not collide.
    """
    payload = b"|".join(
        (
            struct.pack(">d", timestamp),
            ingress_ifid.to_bytes(4, "big"),
            egress_ifid.to_bytes(4, "big"),
            struct.pack(">d", expiry),
            prev_mac,
        )
    )
    return hashlib.blake2b(payload, key=key, digest_size=MAC_BYTES).digest()


@dataclass(frozen=True)
class HopField:
    """One AS's entry in the packet-carried forwarding state.

    ``ingress_ifid``/``egress_ifid`` are the interface ids the packet must
    use to enter/leave the AS, in *forwarding order*; 0 marks the local
    endpoint side (no inter-domain interface).
    """

    asn: int
    ingress_ifid: int
    egress_ifid: int
    expiry: float
    mac: bytes

    def verify(
        self, timestamp: float, prev_mac: bytes, *, key: Optional[bytes] = None
    ) -> bool:
        """Check the MAC under the AS's forwarding key."""
        expected = compute_mac(
            key if key is not None else forwarding_key(self.asn),
            timestamp,
            self.ingress_ifid,
            self.egress_ifid,
            self.expiry,
            prev_mac,
        )
        # Constant-time comparison, like a real border router: a '=='
        # short-circuits on the first differing byte, leaking match
        # length through timing.
        return hmac.compare_digest(expected, self.mac)

    def is_expired(self, now: float) -> bool:
        return now >= self.expiry


def make_hop_field(
    asn: int,
    ingress_ifid: int,
    egress_ifid: int,
    *,
    timestamp: float,
    expiry: float,
    prev_mac: bytes = b"\x00" * MAC_BYTES,
    key: Optional[bytes] = None,
) -> HopField:
    """Create an authenticated hop field for ``asn``."""
    mac = compute_mac(
        key if key is not None else forwarding_key(asn),
        timestamp,
        ingress_ifid,
        egress_ifid,
        expiry,
        prev_mac,
    )
    return HopField(
        asn=asn,
        ingress_ifid=ingress_ifid,
        egress_ifid=egress_ifid,
        expiry=expiry,
        mac=mac,
    )
