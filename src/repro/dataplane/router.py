"""Border routers: stateless packet forwarding over hop fields.

SCION border routers keep no inter-domain forwarding tables — everything a
router needs is in the packet (PCFS, §4.1 Mechanism 4). Our router verifies
the current hop field's MAC under its AS key, checks expiry and interface
consistency, and hands the packet to the next AS over the egress interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.model import Topology
from .hopfield import forwarding_key
from .packet import ForwardingPath, ScionPacket

__all__ = ["ForwardingError", "BorderRouter", "RouterTable", "deliver"]


class ForwardingError(Exception):
    """A packet was dropped; the message says why."""


@dataclass
class BorderRouter:
    """The (single, logical) border router of one AS."""

    asn: int
    topology: Topology

    def __post_init__(self) -> None:
        self._key = forwarding_key(self.asn)

    @property
    def key(self) -> bytes:
        """The AS forwarding key this router verifies MACs under."""
        return self._key

    def forward(self, packet: ScionPacket, *, now: float) -> Tuple[ScionPacket, Optional[int]]:
        """Process the packet at this AS.

        Returns the packet with the cursor advanced and the ASN of the next
        AS (``None`` when this AS is the destination). Raises
        :class:`ForwardingError` on any validation failure.
        """
        path = packet.path
        if path.at_destination:
            raise ForwardingError("path already consumed")
        hop = path.current
        if hop.asn != self.asn:
            raise ForwardingError(
                f"packet at AS {self.asn} but hop field is for AS {hop.asn}"
            )
        if hop.is_expired(now):
            raise ForwardingError(f"hop field of AS {self.asn} expired")
        if not hop.verify(path.timestamp, path.prev_mac(), key=self._key):
            raise ForwardingError(f"MAC verification failed at AS {self.asn}")
        advanced = packet.with_path(path.advanced())
        if hop.egress_ifid == 0:
            if packet.destination.asn != self.asn:
                raise ForwardingError(
                    f"path ends at AS {self.asn} but packet is addressed to "
                    f"AS {packet.destination.asn}"
                )
            return advanced, None
        link = self.topology.as_node(self.asn).interfaces.get(hop.egress_ifid)
        if link is None:
            raise ForwardingError(
                f"AS {self.asn} has no interface {hop.egress_ifid}"
            )
        return advanced, link.other(self.asn)


class RouterTable:
    """Memoized :class:`BorderRouter` instances for one topology.

    Constructing a router derives the AS forwarding key (a keyed hash);
    doing that per hop per packet dominates the data-plane hot path under
    a traffic workload. The table derives each AS's router (and key)
    once and reuses it for every subsequent packet.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._routers: Dict[int, BorderRouter] = {}

    def router(self, asn: int) -> BorderRouter:
        router = self._routers.get(asn)
        if router is None:
            router = BorderRouter(asn, self.topology)
            self._routers[asn] = router
        return router

    def __len__(self) -> int:
        return len(self._routers)

    def forwarding_key(self, asn: int) -> bytes:
        """The memoized forwarding key of ``asn`` (derives the router)."""
        return self.router(asn).key

    def deliver_packet(
        self, packet: ScionPacket, *, now: float
    ) -> Tuple[ScionPacket, List[int]]:
        """Forward a packet hop by hop to its destination.

        Returns the fully-forwarded packet (cursor consumed) and the
        sequence of ASes traversed (source included). Raises
        :class:`ForwardingError` if any router rejects the packet.
        """
        traversed: List[int] = []
        current_asn = packet.path.current.asn
        if current_asn != packet.source.asn:
            raise ForwardingError("path does not start at the packet source")
        while True:
            traversed.append(current_asn)
            packet, next_asn = self.router(current_asn).forward(
                packet, now=now
            )
            if next_asn is None:
                return packet, traversed
            current_asn = next_asn


def deliver(
    topology: Topology,
    packet: ScionPacket,
    *,
    now: float,
    routers: Optional[RouterTable] = None,
) -> List[int]:
    """Forward a packet hop by hop to its destination.

    Returns the sequence of ASes traversed (source included). Raises
    :class:`ForwardingError` if any router rejects the packet. Pass a
    :class:`RouterTable` to reuse per-AS routers (and their derived
    forwarding keys) across packets.
    """
    if routers is None:
        routers = RouterTable(topology)
    elif routers.topology is not topology:
        raise ValueError("router table was built for a different topology")
    _, traversed = routers.deliver_packet(packet, now=now)
    return traversed
