"""Border routers: stateless packet forwarding over hop fields.

SCION border routers keep no inter-domain forwarding tables — everything a
router needs is in the packet (PCFS, §4.1 Mechanism 4). Our router verifies
the current hop field's MAC under its AS key, checks expiry and interface
consistency, and hands the packet to the next AS over the egress interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..topology.model import Topology
from .hopfield import forwarding_key
from .packet import ForwardingPath, ScionPacket

__all__ = ["ForwardingError", "BorderRouter", "deliver"]


class ForwardingError(Exception):
    """A packet was dropped; the message says why."""


@dataclass
class BorderRouter:
    """The (single, logical) border router of one AS."""

    asn: int
    topology: Topology

    def __post_init__(self) -> None:
        self._key = forwarding_key(self.asn)

    def forward(self, packet: ScionPacket, *, now: float) -> Tuple[ScionPacket, Optional[int]]:
        """Process the packet at this AS.

        Returns the packet with the cursor advanced and the ASN of the next
        AS (``None`` when this AS is the destination). Raises
        :class:`ForwardingError` on any validation failure.
        """
        path = packet.path
        if path.at_destination:
            raise ForwardingError("path already consumed")
        hop = path.current
        if hop.asn != self.asn:
            raise ForwardingError(
                f"packet at AS {self.asn} but hop field is for AS {hop.asn}"
            )
        if hop.is_expired(now):
            raise ForwardingError(f"hop field of AS {self.asn} expired")
        if not hop.verify(path.timestamp, path.prev_mac(), key=self._key):
            raise ForwardingError(f"MAC verification failed at AS {self.asn}")
        advanced = packet.with_path(path.advanced())
        if hop.egress_ifid == 0:
            if packet.destination.asn != self.asn:
                raise ForwardingError(
                    f"path ends at AS {self.asn} but packet is addressed to "
                    f"AS {packet.destination.asn}"
                )
            return advanced, None
        link = self.topology.as_node(self.asn).interfaces.get(hop.egress_ifid)
        if link is None:
            raise ForwardingError(
                f"AS {self.asn} has no interface {hop.egress_ifid}"
            )
        return advanced, link.other(self.asn)


def deliver(
    topology: Topology, packet: ScionPacket, *, now: float
) -> List[int]:
    """Forward a packet hop by hop to its destination.

    Returns the sequence of ASes traversed (source included). Raises
    :class:`ForwardingError` if any router rejects the packet.
    """
    traversed: List[int] = []
    current_asn = packet.path.current.asn
    if current_asn != packet.source.asn:
        raise ForwardingError("path does not start at the packet source")
    while True:
        traversed.append(current_asn)
        router = BorderRouter(current_asn, topology)
        packet, next_asn = router.forward(packet, now=now)
        if next_asn is None:
            return traversed
        current_asn = next_asn
