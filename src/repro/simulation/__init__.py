"""Simulation layer: discrete-event engine and beaconing drivers."""

from .engine import Event, EventQueue, SimulationClock, Simulator
from .metrics import InterfaceSnapshot, InterfaceStats, TrafficMetrics
from .beaconing import (
    BeaconingConfig,
    BeaconingMode,
    BeaconingSimulation,
    BeaconServerSim,
    baseline_factory,
    diversity_factory,
)

__all__ = [
    "Event",
    "EventQueue",
    "SimulationClock",
    "Simulator",
    "InterfaceSnapshot",
    "InterfaceStats",
    "TrafficMetrics",
    "BeaconingConfig",
    "BeaconingMode",
    "BeaconingSimulation",
    "BeaconServerSim",
    "baseline_factory",
    "diversity_factory",
]
