"""Traffic accounting for beaconing simulations.

The paper measures "the amount of PCB traffic sent on each inter-domain
interface" (Section 5.2) and, for Figure 9, the per-interface bandwidth in
bytes per second. An *interface* here is one direction of one inter-domain
link, identified by ``(link_id, sender ASN)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.policy import Transmission

__all__ = ["InterfaceStats", "InterfaceSnapshot", "TrafficMetrics"]

InterfaceKey = Tuple[int, int]  # (link_id, sender ASN)


@dataclass
class InterfaceStats:
    """Cumulative PCB traffic sent on one directed interface."""

    pcbs: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.pcbs += 1
        self.bytes += size

    def snapshot(self) -> "InterfaceSnapshot":
        return InterfaceSnapshot(pcbs=self.pcbs, bytes=self.bytes)


@dataclass(frozen=True)
class InterfaceSnapshot:
    """Read-only view of one interface's counters.

    Queries return snapshots rather than live counter objects: a mutable
    stand-in for an unknown interface invites silently-lost updates (the
    caller mutates a throwaway), and handing out live registered objects
    lets callers corrupt the accounting. All mutation goes through
    :meth:`TrafficMetrics.record`.
    """

    pcbs: int = 0
    bytes: int = 0


class TrafficMetrics:
    """Aggregates beaconing traffic by interface and by receiving AS."""

    def __init__(self) -> None:
        self._interfaces: Dict[InterfaceKey, InterfaceStats] = {}
        self._received_bytes: Dict[int, int] = {}
        self._received_pcbs: Dict[int, int] = {}
        self.total_pcbs = 0
        self.total_bytes = 0

    def record(self, transmission: Transmission) -> None:
        size = transmission.wire_size
        key = (transmission.link.link_id, transmission.sender)
        stats = self._interfaces.get(key)
        if stats is None:
            stats = InterfaceStats()
            self._interfaces[key] = stats
        stats.add(size)
        receiver = transmission.receiver
        self._received_bytes[receiver] = self._received_bytes.get(receiver, 0) + size
        self._received_pcbs[receiver] = self._received_pcbs.get(receiver, 0) + 1
        self.total_pcbs += 1
        self.total_bytes += size

    def merge(self, other: "TrafficMetrics") -> None:
        """Fold another window's counters into this one (commutative).

        Interface and receiver accounting are plain sums, so per-shard
        metrics merged in any order equal the single-process totals —
        :meth:`record` updates both the sending interface and the
        receiver at send time, in the sending shard.
        """
        for key, stats in other._interfaces.items():
            mine = self._interfaces.get(key)
            if mine is None:
                mine = InterfaceStats()
                self._interfaces[key] = mine
            mine.pcbs += stats.pcbs
            mine.bytes += stats.bytes
        for asn, value in other._received_bytes.items():
            self._received_bytes[asn] = self._received_bytes.get(asn, 0) + value
        for asn, value in other._received_pcbs.items():
            self._received_pcbs[asn] = self._received_pcbs.get(asn, 0) + value
        self.total_pcbs += other.total_pcbs
        self.total_bytes += other.total_bytes

    def canonicalize(self) -> None:
        """Rebuild internal tables in sorted-key order so a merged object
        iterates (and serialises) identically to a single-process one."""
        self._interfaces = {
            key: self._interfaces[key] for key in sorted(self._interfaces)
        }
        self._received_bytes = {
            asn: self._received_bytes[asn]
            for asn in sorted(self._received_bytes)
        }
        self._received_pcbs = {
            asn: self._received_pcbs[asn]
            for asn in sorted(self._received_pcbs)
        }

    # ------------------------------------------------------------- queries

    def interface_stats(self, link_id: int, sender: int) -> InterfaceSnapshot:
        stats = self._interfaces.get((link_id, sender))
        if stats is None:
            return InterfaceSnapshot()
        return stats.snapshot()

    def interfaces(self) -> Dict[InterfaceKey, InterfaceSnapshot]:
        return {key: stats.snapshot() for key, stats in self._interfaces.items()}

    def bytes_received_by(self, asn: int) -> int:
        return self._received_bytes.get(asn, 0)

    def pcbs_received_by(self, asn: int) -> int:
        return self._received_pcbs.get(asn, 0)

    def per_interface_bandwidth(
        self,
        duration: float,
        interfaces: Optional[Iterable[InterfaceKey]] = None,
    ) -> List[float]:
        """Bytes per second sent on each directed interface.

        ``interfaces`` should be the topology's full directed-interface set
        (e.g. :meth:`BeaconingSimulation.directed_interfaces`): interfaces
        that sent nothing then report 0 Bps instead of vanishing from the
        distribution, which would bias a bandwidth CDF (Figure 9) upward.
        Without ``interfaces`` only active interfaces are reported.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if interfaces is None:
            return [
                stats.bytes / duration for stats in self._interfaces.values()
            ]
        out: List[float] = []
        for key in interfaces:
            stats = self._interfaces.get(key)
            out.append(stats.bytes / duration if stats is not None else 0.0)
        return out

    def mean_pcb_size(self) -> float:
        return self.total_bytes / self.total_pcbs if self.total_pcbs else 0.0
