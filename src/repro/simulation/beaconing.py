"""Interval-stepped SCION beaconing simulation.

Reproduces the setup of Section 5.1: "we simulate six hours of beaconing
with a beaconing interval of ten minutes and a PCB lifetime of six hours.
The PCB dissemination limit ... is set to 5 for all experiments. ... The PCB
storage limit ... varies in different experiments."

Two beaconing processes share one driver:

* **core beaconing** (``BeaconingMode.CORE``) — selective flooding among
  core ASes over ``CORE`` links: every core AS originates beacons and
  propagates received ones to all core neighbors, subject to the
  path-construction algorithm's selection;
* **intra-ISD beaconing** (``BeaconingMode.INTRA_ISD``) — uni-directional
  flooding from the ISD core to the leaves: core ASes originate, every AS
  propagates only on provider-to-customer links.

Beacons advance one AS hop per beaconing interval (a beacon selected at
interval *t* is available in the receiver's store at interval *t+1*),
matching the periodic trigger of the real beacon servers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.baseline import BaselineAlgorithm
from ..core.beacon_store import BeaconStore
from ..core.diversity import DiversityAlgorithm
from ..core.pcb import PCB
from ..core.policy import PathConstructionAlgorithm, Transmission
from ..core.scoring import DiversityParams
from ..obs import NULL_TELEMETRY, Telemetry
from ..topology.model import Link, Relationship, Topology
from .metrics import TrafficMetrics

__all__ = [
    "BeaconingMode",
    "BeaconingConfig",
    "BeaconServerSim",
    "BeaconingSimulation",
    "baseline_factory",
    "diversity_factory",
]

AlgorithmFactory = Callable[[int, Topology], PathConstructionAlgorithm]


class BeaconingMode(enum.Enum):
    CORE = "core"
    INTRA_ISD = "intra-isd"


@dataclass(frozen=True)
class BeaconingConfig:
    """Timing and limits of a beaconing run (paper defaults)."""

    interval: float = 600.0
    duration: float = 6 * 3600.0
    pcb_lifetime: float = 6 * 3600.0
    storage_limit: Optional[int] = 60
    mode: BeaconingMode = BeaconingMode.CORE
    #: Beacon-store eviction policy ("shortest" or "diverse"); see
    #: :mod:`repro.core.beacon_store`.
    eviction_policy: str = "shortest"

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.duration <= 0 or self.pcb_lifetime <= 0:
            raise ValueError("interval, duration and pcb_lifetime must be positive")
        if self.duration < self.interval:
            raise ValueError("duration must cover at least one interval")

    @property
    def num_intervals(self) -> int:
        return int(self.duration // self.interval)


# The factories are module-level callable objects (not closures) because
# the simulation keeps its factory for server rebuilds after AS recovery,
# and warm-state snapshots pickle the whole simulation.
@dataclass(frozen=True)
class _BaselineFactory:
    dissemination_limit: int = 5

    def __call__(
        self, asn: int, topology: Topology
    ) -> PathConstructionAlgorithm:
        return BaselineAlgorithm(
            asn, topology, dissemination_limit=self.dissemination_limit
        )


@dataclass(frozen=True)
class _DiversityFactory:
    dissemination_limit: int = 5
    params: Optional[DiversityParams] = None
    #: Scoring kernel backend name (``repro.kernels``); a pure
    #: performance choice — every backend scores bit-identically.
    kernel: str = "python"

    def __call__(
        self, asn: int, topology: Topology
    ) -> PathConstructionAlgorithm:
        return DiversityAlgorithm(
            asn,
            topology,
            dissemination_limit=self.dissemination_limit,
            params=self.params,
            # getattr: factories unpickled from pre-kernel warm snapshots
            # have no kernel field.
            kernel=getattr(self, "kernel", "python"),
        )


def baseline_factory(dissemination_limit: int = 5) -> AlgorithmFactory:
    """Factory for per-AS baseline algorithm instances."""
    return _BaselineFactory(dissemination_limit)


def diversity_factory(
    dissemination_limit: int = 5,
    params: Optional[DiversityParams] = None,
    kernel: str = "python",
) -> AlgorithmFactory:
    """Factory for per-AS path-diversity algorithm instances."""
    return _DiversityFactory(dissemination_limit, params, kernel)


@dataclass
class BeaconServerSim:
    """The simulated beacon-server state of one AS."""

    asn: int
    store: BeaconStore
    algorithm: PathConstructionAlgorithm
    egress_links: List[Link] = field(default_factory=list)
    originates: bool = False


class BeaconingSimulation:
    """Runs one beaconing process over a topology and collects metrics."""

    #: Class-level default so simulations restored from pre-telemetry warm
    #: snapshots (and fresh ones without an attached bundle) are no-ops.
    obs: Telemetry = NULL_TELEMETRY

    #: Whether :meth:`step` emits the per-interval trace span and the
    #: ``beaconing.intervals`` counter. Shard workers set this False — the
    #: shard coordinator emits them exactly once per *global* interval so
    #: sharded and single-process telemetry stay byte-identical.
    _interval_telemetry: bool = True

    def __init__(
        self,
        topology: Topology,
        algorithm_factory: AlgorithmFactory,
        config: Optional[BeaconingConfig] = None,
        *,
        obs: Optional[Telemetry] = None,
    ) -> None:
        if obs is not None:
            self.obs = obs
        self.topology = topology
        self.config = config or BeaconingConfig()
        self.metrics = TrafficMetrics()
        self.now = 0.0
        self.intervals_run = 0
        self._failed_links: set = set()
        self._failed_ases: set = set()
        self._in_flight: List[Transmission] = []
        self.servers: Dict[int, BeaconServerSim] = {}
        #: Optional deterministic message-loss model consulted at delivery:
        #: ``loss_model(transmission, interval) -> bool`` (True = drop).
        self.loss_model: Optional[Callable[[Transmission, int], bool]] = None
        #: Beacons dropped by the loss model since construction.
        self.pcbs_lost = 0
        self._factory = algorithm_factory
        self._build_servers(algorithm_factory)

    # --------------------------------------------------------------- setup

    def _build_servers(self, factory: AlgorithmFactory) -> None:
        mode = self.config.mode
        for node in self.topology.ases():
            # Core beaconing runs among core ASes only; intra-ISD beaconing
            # involves every AS of the ISD (leaves receive but never send).
            if mode is BeaconingMode.CORE and not node.is_core:
                continue
            egress = self._egress_links(node.asn)
            self.servers[node.asn] = BeaconServerSim(
                asn=node.asn,
                store=BeaconStore(
                    self.config.storage_limit,
                    eviction_policy=self.config.eviction_policy,
                ),
                algorithm=factory(node.asn, self.topology),
                egress_links=egress,
                originates=node.is_core,
            )
        if not any(server.originates for server in self.servers.values()):
            raise ValueError(
                "no core AS in topology: nothing would originate beacons"
            )

    def _egress_links(self, asn: int) -> List[Link]:
        links: List[Link] = []
        for link in self.topology.as_node(asn).links():
            if self.config.mode is BeaconingMode.CORE:
                if link.relationship is Relationship.CORE:
                    links.append(link)
            else:
                # Intra-ISD beaconing forwards only provider -> customer.
                if link.is_provider(asn):
                    links.append(link)
        links.sort(key=lambda l: l.link_id)
        return links

    # ----------------------------------------------------------------- run

    def run(self) -> "BeaconingSimulation":
        """Run all intervals of the configured duration."""
        for _ in range(self.config.num_intervals):
            self.step()
        self._deliver()
        return self

    def reset_metrics(self) -> TrafficMetrics:
        """Discard traffic counters (e.g. after a warm-up phase) and return
        the metrics object that will collect the next window."""
        self.metrics = TrafficMetrics()
        return self.metrics

    def run_intervals(self, count: int) -> "BeaconingSimulation":
        """Run exactly ``count`` beaconing intervals."""
        for _ in range(count):
            self.step()
        return self

    def attach_telemetry(self, obs: Telemetry) -> None:
        """Attach (or replace) the telemetry bundle — e.g. after loading a
        warm snapshot, so only the measured window is counted."""
        self.obs = obs

    def __getstate__(self) -> dict:
        # Telemetry never travels with warm-state snapshots: a cached
        # simulation must not resurrect a stale recorder, and the cache
        # key deliberately ignores observability settings.
        state = self.__dict__.copy()
        state.pop("obs", None)
        return state

    def step(self) -> None:
        """One beaconing interval: deliver, originate, select-and-send."""
        obs = self.obs
        if not obs.enabled:
            self._step_inner()
            return
        pcbs_before = self.metrics.total_pcbs
        bytes_before = self.metrics.total_bytes
        lost_before = self.pcbs_lost
        mode = self.config.mode.value
        if self._interval_telemetry:
            with obs.trace.span(
                "beaconing", "interval", mode=mode, interval=self.intervals_run
            ):
                self._step_inner()
        else:
            self._step_inner()
        labels = {"mode": mode}
        metrics = obs.metrics
        if self._interval_telemetry:
            metrics.counter("beaconing.intervals", labels).inc()
        metrics.counter("beaconing.pcbs_disseminated", labels).inc(
            self.metrics.total_pcbs - pcbs_before
        )
        metrics.counter("beaconing.bytes_sent", labels).inc(
            self.metrics.total_bytes - bytes_before
        )
        lost = self.pcbs_lost - lost_before
        if lost:
            metrics.counter("beaconing.pcbs_lost", labels).inc(lost)

    def _step_inner(self) -> None:
        self._deliver()
        self._originate()
        for asn in sorted(self.servers):
            if asn in self._failed_ases:
                continue
            server = self.servers[asn]
            if not server.egress_links:
                continue
            transmissions = server.algorithm.select(
                server.store, server.egress_links, self.now
            )
            for transmission in transmissions:
                self.metrics.record(transmission)
            self._in_flight.extend(transmissions)
        self.now += self.config.interval
        self.intervals_run += 1

    def _deliver(self) -> None:
        for transmission in self._in_flight:
            if transmission.receiver in self._failed_ases:
                continue
            if self.loss_model is not None and self.loss_model(
                transmission, self.intervals_run
            ):
                self.pcbs_lost += 1
                continue
            receiver = self.servers.get(transmission.receiver)
            if receiver is not None:
                receiver.store.insert(transmission.pcb, self.now)
        self._in_flight = []

    def _originate(self) -> None:
        for server in self.servers.values():
            if server.originates and server.asn not in self._failed_ases:
                pcb = PCB.originate(
                    server.asn, self.now, self.config.pcb_lifetime
                )
                server.store.insert(pcb, self.now)

    # ------------------------------------------------------------ failures

    def fail_link(self, link_id: int) -> int:
        """Fail an inter-domain link mid-simulation.

        The two reactions of §4.1 at beaconing level: the link disappears
        from every beacon server's egress set, and stored beacons crossing
        it are revoked (dropped), so subsequent intervals re-explore around
        the failure. Stateful algorithms are notified so their sent-path
        bookkeeping does not suppress re-dissemination after recovery.
        Returns the number of beacons revoked.
        """
        self.topology.link(link_id)  # validate the id
        self.obs.trace.instant(
            "beaconing", "fail_link", link_id=link_id, interval=self.intervals_run
        )
        return self._fail_link_impl(link_id)

    def _fail_link_impl(self, link_id: int) -> int:
        """Validation-free core of :meth:`fail_link`. Shard workers apply
        remote failures through this path — the link may not exist in the
        worker's halo topology, but stored beacons crossing it still must
        be revoked everywhere."""
        self._failed_links.add(link_id)
        revoked = 0
        for server in self.servers.values():
            revoked += server.store.remove_crossing(link_id)
            server.algorithm.on_link_revoked(link_id)
        self._in_flight = [
            t
            for t in self._in_flight
            if link_id not in t.pcb.link_ids()
        ]
        self._refresh_egress()
        return revoked

    def recover_link(self, link_id: int) -> None:
        """Bring a previously failed link back into service.

        The link reappears in the egress sets it belongs to; subsequent
        intervals re-disseminate across it (stores refill hop by hop from
        the origins, one interval per AS hop).
        """
        self.topology.link(link_id)  # validate the id
        self.obs.trace.instant(
            "beaconing", "recover_link", link_id=link_id,
            interval=self.intervals_run,
        )
        self._recover_link_impl(link_id)

    def _recover_link_impl(self, link_id: int) -> None:
        self._failed_links.discard(link_id)
        self._refresh_egress()

    def fail_as(self, asn: int) -> int:
        """Take an entire AS out of service (§5.3's partial-outage view).

        The AS stops originating and propagating, every link incident to
        it disappears from its neighbors' egress sets, its own beacon
        store is wiped (the beacon-server process is gone), and beacons
        whose path visits the AS are revoked everywhere — each of its
        links is effectively failed. Returns the number of beacons revoked.
        """
        self.topology.as_node(asn)  # validate the asn
        return self._fail_as_impl(asn, self.topology.incident_link_ids(asn))

    def _fail_as_impl(self, asn: int, incident: Sequence[int]) -> int:
        """Validation-free core of :meth:`fail_as`. ``incident`` is the
        failed AS's incident link-id set, supplied by the caller because a
        shard worker's halo topology may not contain the AS at all."""
        if asn in self._failed_ases:
            return 0
        self._failed_ases.add(asn)
        revoked = 0
        for server in self.servers.values():
            if server.asn == asn:
                revoked += server.store.clear()
            else:
                revoked += server.store.remove_traversing_as(asn)
            for link_id in incident:
                server.algorithm.on_link_revoked(link_id)
        self._in_flight = [
            t
            for t in self._in_flight
            if t.sender != asn
            and t.receiver != asn
            and not t.pcb.contains_as(asn)
        ]
        self._refresh_egress()
        return revoked

    def recover_as(self, asn: int) -> None:
        """Restart a failed AS with a fresh beacon server.

        Store and algorithm state are rebuilt from scratch (a process
        restart keeps no in-memory state); its links return to service
        unless individually failed.
        """
        self.topology.as_node(asn)  # validate the asn
        self._recover_as_impl(asn)

    def _recover_as_impl(self, asn: int) -> None:
        if asn not in self._failed_ases:
            return
        self._failed_ases.discard(asn)
        server = self.servers.get(asn)
        if server is not None:
            server.store = BeaconStore(
                self.config.storage_limit,
                eviction_policy=self.config.eviction_policy,
            )
            server.algorithm = self._factory(asn, self.topology)
        self._refresh_egress()

    def _refresh_egress(self) -> None:
        """Recompute every server's egress set from the topology, minus
        failed links and links terminating at failed ASes."""
        for server in self.servers.values():
            server.egress_links = [
                link
                for link in self._egress_links(server.asn)
                if link.link_id not in self._failed_links
                and link.other(server.asn) not in self._failed_ases
            ]

    def failed_links(self) -> List[int]:
        return sorted(self._failed_links)

    def failed_ases(self) -> List[int]:
        return sorted(self._failed_ases)

    # ------------------------------------------------------------- queries

    @property
    def end_time(self) -> float:
        return self.now

    def paths_at(self, asn: int, origin: int) -> List[PCB]:
        """Disseminated beacons from ``origin`` stored at ``asn``, valid as
        of the last executed beaconing interval."""
        server = self.servers.get(asn)
        if server is None:
            return []
        last_interval = max(0.0, self.now - self.config.interval)
        return server.store.beacons(origin, now=last_interval)

    def directed_interfaces(self) -> List[tuple]:
        """The full directed-interface set of this beaconing process:
        every ``(link_id, sender)`` a participant could send a beacon on
        (egress links of every server), whether or not it saw traffic.
        Failed links are excluded. This is the interface population that
        per-interface bandwidth distributions (Figure 9) cover."""
        keys = {
            (link.link_id, server.asn)
            for server in self.servers.values()
            for link in server.egress_links
        }
        return sorted(keys)

    def participant_asns(self) -> List[int]:
        return sorted(self.servers)

    def originator_asns(self) -> List[int]:
        return sorted(
            asn for asn, server in self.servers.items() if server.originates
        )
