"""A minimal discrete-event simulation core.

Used by the BGP/BGPsec simulator (which needs MRAI timers and per-message
processing delays) and available to any other time-driven component. The
beaconing simulators are interval-stepped and drive their own clock, but
share the :class:`SimulationClock` abstraction for consistency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["Event", "EventQueue", "SimulationClock", "Simulator"]


class SimulationClock:
    """Monotonic simulation time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        if when < self._now:
            raise ValueError(
                f"cannot move time backwards ({when} < {self._now})"
            )
        self._now = when


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    when: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    canceled: bool = field(default=False, compare=False)
    #: Owning queue, so cancellation can keep the live-event count exact
    #: without scanning the heap.
    owner: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        if not self.canceled:
            self.canceled = True
            if self.owner is not None:
                self.owner._live -= 1


class EventQueue:
    """A cancelable priority queue of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        #: Number of non-canceled events; canceled events linger in the
        #: heap until popped, so ``len(heap)`` overcounts.
        self._live = 0

    def schedule(self, when: float, action: Callable[[], Any]) -> Event:
        event = Event(
            when=when, sequence=next(self._counter), action=action, owner=self
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop_next(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.canceled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].canceled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None

    def __len__(self) -> int:
        return self._live


class Simulator:
    """Run events in time order until the queue drains or a horizon hits."""

    #: Class-level default keeps pickled simulators and existing callers
    #: telemetry-free; :meth:`attach_telemetry` opts in.
    obs: Telemetry = NULL_TELEMETRY

    def __init__(
        self, start: float = 0.0, *, obs: Optional[Telemetry] = None
    ) -> None:
        self.clock = SimulationClock(start)
        self.queue = EventQueue()
        self.events_processed = 0
        if obs is not None:
            self.obs = obs

    def attach_telemetry(self, obs: Telemetry) -> None:
        self.obs = obs

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], Any]) -> Event:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.queue.schedule(self.now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], Any]) -> Event:
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        return self.queue.schedule(when, action)

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until drained, the horizon, or the event budget.

        Returns the number of events processed by this call.
        """
        profiler = self.obs.profile
        profiling = profiler.enabled
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self.queue.pop_next()
            assert event is not None
            self.clock.advance_to(event.when)
            if profiling:
                # Sampling timer: phase key is the scheduled callable, so
                # the profile ranks event *kinds* (e.g. MRAI expirations
                # vs. message processing), not individual events.
                action = event.action
                phase = getattr(
                    action, "__qualname__", type(action).__name__
                )
                with profiler.sample(f"sim.{phase}"):
                    action()
            else:
                event.action()
            processed += 1
        if until is not None and until > self.now:
            # Only jump the clock to the horizon once the queue has drained
            # past it; stopping on the event budget with events still due
            # before ``until`` must leave the clock where it is, or the next
            # run() would try to move time backwards.
            next_time = self.queue.peek_time()
            if next_time is None or next_time > until:
                self.clock.advance_to(until)
        self.events_processed += processed
        if processed and self.obs.metrics.enabled:
            self.obs.metrics.counter("sim.events_processed").inc(processed)
        return processed
