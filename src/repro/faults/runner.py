"""Process-pool task bodies for fault-injection runs.

Mirrors :mod:`repro.runtime.worker`: everything a fault run needs travels
as plain picklable data (:class:`FaultSpec` / :class:`FaultTask`), the task
body is a module-level function, and results come back as
:class:`FaultOutcome`. The cached artifact is the final
:class:`~repro.faults.injector.FaultRunResult` — a tree of primitives — so
a cache hit is byte-identical to the run that produced it, and ``--jobs 1``
versus ``--jobs N`` compare equal by pickle.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..control.revocation import RevocationService
from ..core.scoring import DiversityParams
from ..obs import Telemetry
from ..obs.context import NULL_CAUSAL_SPAN
from ..runtime.cache import ExperimentCache, stable_key, topology_fingerprint
from ..runtime.worker import _load_topology
from ..simulation.beaconing import (
    BeaconingConfig,
    BeaconingSimulation,
    baseline_factory,
    diversity_factory,
)
from ..topology.model import Topology
from .injector import FaultInjector, FaultRunResult
from .schedule import FaultSchedule

__all__ = [
    "FaultSpec",
    "FaultTask",
    "FaultOutcome",
    "execute_fault_run",
]


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection run: a beaconing setup plus a fault schedule."""

    name: str
    #: ``"baseline"`` or ``"diversity"`` — resolved to a factory in the
    #: worker (factory closures don't pickle; names + params do).
    algorithm: str
    config: BeaconingConfig
    schedule: FaultSchedule
    dissemination_limit: int = 5
    params: Optional[DiversityParams] = None
    seed: int = 0
    #: Seed of the deterministic beacon-loss model (loss bursts only).
    loss_seed: int = 0
    #: (origin, receiver) pairs whose recovery the injector tracks.
    pairs: Tuple[Tuple[int, int], ...] = ()
    #: Account §4.1 revocation messages through a RevocationService.
    account_revocations: bool = True

    def algorithm_factory(self, kernel: str = "python"):
        if self.algorithm == "baseline":
            return baseline_factory(self.dissemination_limit)
        if self.algorithm == "diversity":
            return diversity_factory(
                self.dissemination_limit, self.params, kernel
            )
        raise ValueError(f"unknown algorithm {self.algorithm!r}")

    def result_key(self, topology_fp: str) -> str:
        """Cache key of this run's result (spec is pure primitives)."""
        return stable_key("fault-run", topology_fp, self)


@dataclass(frozen=True)
class FaultTask:
    """A :class:`FaultSpec` plus how the worker obtains its topology.

    Field names match :class:`~repro.runtime.worker.SeriesTask` so the
    worker-side topology loader (inline value, or cache dir + key with a
    per-process memo) is shared between the two task kinds.
    """

    spec: FaultSpec
    topology: Optional[Topology] = None
    cache_dir: Optional[str] = None
    topology_key: Optional[str] = None
    #: Collect metrics + trace events into the outcome. Lives on the task,
    #: not the spec: specs feed cache keys, and observing a run must not
    #: change where its result is cached.
    telemetry: bool = False
    #: Also run the sampling profiler (wall-clock; non-deterministic).
    profile: bool = False
    #: Run the beaconing through the sharded kernel (``repro.shard``)
    #: when > 1. Lives on the task, not the spec: sharded runs are
    #: byte-identical to single-process by contract, so the shard count
    #: must not change where a result is cached.
    shards: int = 1
    #: Give each shard its own worker process (coordinator policy: only
    #: when the runtime isn't already fanned out across ``--jobs``).
    shard_processes: bool = False
    #: Kernel backend (``repro.kernels``) the run computes through. Lives
    #: on the task, not the spec, for the same reason as ``shards``:
    #: backends are byte-identical by contract, so the choice must not
    #: change cache keys or results.
    backend: str = "python"
    #: Causal-trace identity (see :class:`~repro.runtime.worker.
    #: SeriesTask`); ``-1`` disables causal tracing for the task.
    trace_index: int = -1
    trace_seed: int = 0


@dataclass
class FaultOutcome:
    """One fault run's report. ``result`` is deliberately separate from
    ``timings``: the former is deterministic and compared across jobs
    counts, the latter is wall-clock noise."""

    name: str
    result: FaultRunResult
    cached: bool = False
    timings: Dict[str, float] = field(default_factory=dict)
    #: Worker-side telemetry, shipped back for the parent to merge. A
    #: cached outcome re-ran nothing, so it carries none.
    metrics: Optional[Dict] = None
    trace: Optional[list] = None
    causal: Optional[list] = None


def execute_fault_run(task: FaultTask) -> FaultOutcome:
    """Run one fault-injection schedule; the process-pool task body."""
    spec = task.spec
    random.seed(spec.seed)
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    topology = _load_topology(task)
    cache = ExperimentCache(task.cache_dir) if task.cache_dir else None
    result_key = (
        spec.result_key(topology_fingerprint(topology)) if cache else None
    )
    timings["setup"] = time.perf_counter() - start

    if cache is not None and result_key is not None:
        hit, cached_result = cache.load(result_key)
        if hit:
            timings["run"] = 0.0
            return FaultOutcome(
                name=spec.name,
                result=cached_result,
                cached=True,
                timings=timings,
            )

    tel: Optional[Telemetry] = None
    if task.telemetry:
        tel = Telemetry.collecting(
            profile=task.profile,
            labels={"series": spec.name, "algorithm": spec.algorithm},
        )

    # Causal root of this run's trace (see runtime.worker.execute_series
    # for the determinism contract). ``causal.current`` is set before the
    # simulation builds so shard workers parent their spans to this root.
    root = NULL_CAUSAL_SPAN
    if tel is not None and task.trace_index >= 0:
        tel.causal.configure(
            seed=task.trace_seed, worker=f"pid{os.getpid()}"
        )
        root = tel.causal.root(
            task.trace_index,
            "faults",
            f"fault:{spec.name}",
            algorithm=spec.algorithm,
        )
        tel.causal.current = root.ctx

    start = time.perf_counter()
    if task.shards > 1:
        # Imported lazily: single-process runs must not depend on the
        # sharded kernel.
        from ..shard import ShardedBeaconing

        sim = ShardedBeaconing(
            topology,
            spec.algorithm_factory(task.backend),
            spec.config,
            shards=task.shards,
            processes=task.shard_processes,
            obs=tel,
        )
    else:
        sim = BeaconingSimulation(
            topology, spec.algorithm_factory(task.backend), spec.config, obs=tel
        )
    revocations = (
        RevocationService(topology) if spec.account_revocations else None
    )
    injector = FaultInjector(
        sim,
        spec.schedule,
        pairs=spec.pairs,
        revocations=revocations,
        loss_seed=spec.loss_seed,
        name=spec.name,
        obs=tel,
    )
    run_span = (
        tel.causal.begin(root.ctx, "faults", "run")
        if tel is not None
        else NULL_CAUSAL_SPAN
    )
    result = injector.run()
    run_span.end(
        events=result.events_applied,
        revocations=result.revocations_issued,
    )
    if task.shards > 1:
        # Stops shard workers and (in process mode) merges their metric
        # registries — and shard causal spans — into ``tel`` before the
        # snapshot below.
        sim.close()
    # The root closes after sim.close() so shard spans (stamped with the
    # coordinator's collect time) still nest inside it.
    root.end(events=result.events_applied)
    timings["run"] = time.perf_counter() - start

    if cache is not None and result_key is not None:
        cache.store(result_key, result)
    outcome = FaultOutcome(name=spec.name, result=result, timings=timings)
    if tel is not None:
        tel.export_profile()
        outcome.metrics = tel.metrics.snapshot()
        outcome.trace = list(tel.trace.events)
        if tel.causal.enabled and task.trace_index >= 0:
            outcome.causal = tel.causal.export()
    return outcome
