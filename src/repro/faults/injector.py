"""Drives a fault schedule against a beaconing simulation.

The injector owns the interval loop: before each beaconing interval it
applies the schedule's due events (link failures/recoveries, AS
outages/restarts, loss-window edges), triggers §4.1 revocations through
:class:`~repro.control.revocation.RevocationService` (re-announced while
the failure persists, per the revocation lifetime), and after the interval
observes the monitored AS pairs. The result is a
:class:`FaultRunResult` of plain primitives: per-pair recovery records
(time-to-reconnect, paths lost/regained, pre/post resilience) and run
totals (revocations issued and their bytes, beacons revoked, beacons lost
to the loss model).

Everything here is deterministic given (simulation seed, schedule, loss
seed): event application order is the schedule's validated order, the loss
model decides per transmission from a content key rather than shared RNG
state, and observations iterate sorted pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import List, Optional, Sequence, Tuple

from ..analysis.resilience import path_set_resilience
from ..control.messages import Component
from ..control.revocation import RevocationService
from ..core.policy import Transmission
from ..obs import NULL_TELEMETRY, Telemetry
from ..simulation.beaconing import BeaconingSimulation
from .schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "BeaconLossModel",
    "PairRecovery",
    "FaultRunResult",
    "FaultInjector",
]

#: Bucket bounds (beaconing intervals) of the recovery-time histograms.
RECOVERY_INTERVAL_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0)


@dataclass(frozen=True)
class BeaconLossModel:
    """Deterministic per-transmission drop decision.

    The decision is a pure function of (seed, delivery interval, link,
    sender, beacon path), so it does not depend on delivery order or on
    any shared RNG state — two runs of the same schedule drop exactly the
    same beacons, in-process or in a worker.
    """

    seed: int
    rate: float

    def __call__(self, transmission: Transmission, interval: int) -> bool:
        if self.rate <= 0.0:
            return False
        key = (
            self.seed,
            interval,
            transmission.link.link_id,
            transmission.sender,
            transmission.pcb.origin,
            transmission.pcb.link_ids(),
        )
        # hash() of a tuple of ints is deterministic across processes
        # (PYTHONHASHSEED only perturbs str/bytes), so workers and the
        # serial path drop exactly the same beacons.
        return Random(hash(key)).random() < self.rate


@dataclass
class PairRecovery:
    """Recovery bookkeeping for one monitored (origin, receiver) pair."""

    origin: int
    receiver: int
    #: Stored paths / resilience just before the first fault was applied.
    pre_paths: int = 0
    pre_resilience: int = 0
    #: Lowest stored-path count observed from the first fault onward.
    min_paths: int = 0
    #: Intervals the pair spent with zero stored paths.
    disconnected_intervals: int = 0
    #: Intervals the pair spent below its pre-failure path count.
    degraded_intervals: int = 0
    #: Intervals from losing the last path to regaining one, or None if
    #: the pair never disconnected (or never reconnected).
    reconnect_intervals: Optional[int] = None
    #: Intervals from first dropping below the pre-failure path count to
    #: first returning to it — the re-exploration delay. None if the pair
    #: never degraded (or never restored).
    restore_intervals: Optional[int] = None
    #: Stored paths / resilience at the end of the run.
    post_paths: int = 0
    post_resilience: int = 0

    @property
    def paths_lost(self) -> int:
        return max(0, self.pre_paths - self.min_paths)

    @property
    def paths_regained(self) -> int:
        return max(0, self.post_paths - self.min_paths)

    @property
    def resilience_recovered(self) -> bool:
        return self.post_resilience >= self.pre_resilience


@dataclass
class FaultRunResult:
    """Everything one fault run reports, picklable and comparable."""

    name: str
    intervals: int
    interval_seconds: float
    pairs: List[PairRecovery] = field(default_factory=list)
    revocations_issued: int = 0
    revocation_bytes: int = 0
    beacons_revoked: int = 0
    pcbs_lost: int = 0
    events_applied: int = 0

    def recovery_times(self) -> List[float]:
        """Seconds from disconnection to reconnection, one entry per pair
        that disconnected and came back."""
        return [
            pair.reconnect_intervals * self.interval_seconds
            for pair in self.pairs
            if pair.reconnect_intervals is not None
        ]

    def restore_times(self) -> List[float]:
        """Seconds from dropping below the pre-failure path count to
        returning to it, one entry per pair that degraded and restored."""
        return [
            pair.restore_intervals * self.interval_seconds
            for pair in self.pairs
            if pair.restore_intervals is not None
        ]

    def disconnected_pairs(self) -> int:
        return sum(1 for pair in self.pairs if pair.min_paths == 0)

    def degraded_pairs(self) -> int:
        return sum(1 for pair in self.pairs if pair.min_paths < pair.pre_paths)

    def recovered_pairs(self) -> int:
        return sum(1 for pair in self.pairs if pair.resilience_recovered)


class _PairTracker:
    """Per-interval connectivity state machine for one monitored pair."""

    def __init__(self, record: PairRecovery) -> None:
        self.record = record
        self.armed = False  # becomes True once the first fault is applied
        self.down_since: Optional[int] = None
        self.degraded_since: Optional[int] = None

    def observe(self, interval: int, path_count: int) -> None:
        if not self.armed:
            return
        record = self.record
        record.min_paths = min(record.min_paths, path_count)
        if path_count == 0:
            record.disconnected_intervals += 1
            if self.down_since is None:
                self.down_since = interval
        elif self.down_since is not None:
            if record.reconnect_intervals is None:
                record.reconnect_intervals = interval - self.down_since
            self.down_since = None
        if path_count < record.pre_paths:
            record.degraded_intervals += 1
            if self.degraded_since is None:
                self.degraded_since = interval
        elif self.degraded_since is not None:
            if record.restore_intervals is None:
                record.restore_intervals = interval - self.degraded_since
            self.degraded_since = None


class FaultInjector:
    """Applies a :class:`FaultSchedule` to one beaconing simulation."""

    def __init__(
        self,
        sim: BeaconingSimulation,
        schedule: FaultSchedule,
        *,
        pairs: Sequence[Tuple[int, int]] = (),
        revocations: Optional[RevocationService] = None,
        loss_seed: int = 0,
        name: str = "fault-run",
        obs: Optional[Telemetry] = None,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.obs = obs if obs is not None else NULL_TELEMETRY
        self.pairs = tuple(sorted(pairs))
        self.revocations = revocations
        self.loss_seed = loss_seed
        self.result = FaultRunResult(
            name=name,
            intervals=schedule.horizon,
            interval_seconds=sim.config.interval,
            pairs=[
                PairRecovery(origin=origin, receiver=receiver)
                for origin, receiver in self.pairs
            ],
        )
        self._trackers = [_PairTracker(record) for record in self.result.pairs]
        self._first_fault = schedule.first_fault_interval()
        self._captured_pre = False
        self._metrics_exported = False

    # ----------------------------------------------------------------- run

    def run(self) -> FaultRunResult:
        """Run the whole horizon and finalize the result."""
        for _ in range(self.schedule.horizon):
            self.step()
        return self.finalize()

    def step(self) -> None:
        """One beaconing interval: apply due events, step, observe."""
        interval = self.sim.intervals_run
        with self.obs.trace.span(
            "faults", "step", run=self.result.name, interval=interval
        ):
            if interval == self._first_fault and not self._captured_pre:
                self._capture_pre()
            self._apply_events(interval)
            self.sim.step()
            self._observe(interval)

    def finalize(self) -> FaultRunResult:
        """Capture the post-run state; idempotent."""
        for record in self.result.pairs:
            paths = self._pair_paths(record.origin, record.receiver)
            record.post_paths = len(paths)
            record.post_resilience = path_set_resilience(
                self.sim.topology, record.origin, record.receiver, paths
            )
        self.result.pcbs_lost = self.sim.pcbs_lost
        if self.obs.metrics.enabled and not self._metrics_exported:
            self._metrics_exported = True
            self._export_metrics()
        return self.result

    def _export_metrics(self) -> None:
        """Fold this run's totals into the metrics registry (once)."""
        metrics = self.obs.metrics
        result = self.result
        labels = {"run": result.name}
        for name, value in (
            ("faults.events_applied", result.events_applied),
            ("faults.revocations_issued", result.revocations_issued),
            ("faults.revocation_bytes", result.revocation_bytes),
            ("faults.beacons_revoked", result.beacons_revoked),
            ("faults.pcbs_lost", result.pcbs_lost),
        ):
            if value:
                metrics.counter(name, labels).inc(value)
        reconnect = metrics.histogram(
            "faults.reconnect_intervals", RECOVERY_INTERVAL_BUCKETS, labels
        )
        restore = metrics.histogram(
            "faults.restore_intervals", RECOVERY_INTERVAL_BUCKETS, labels
        )
        for pair in result.pairs:
            if pair.reconnect_intervals is not None:
                reconnect.observe(float(pair.reconnect_intervals))
            if pair.restore_intervals is not None:
                restore.observe(float(pair.restore_intervals))

    # -------------------------------------------------------------- events

    def _apply_events(self, interval: int) -> None:
        for event in self.schedule.events_at(interval):
            self._apply(event)
            self.result.events_applied += 1
        self._reannounce_revocations()

    def _apply(self, event: FaultEvent) -> None:
        sim = self.sim
        self.obs.trace.instant(
            "faults",
            event.kind.name.lower(),
            target=event.target,
            interval=sim.intervals_run,
        )
        if event.kind is FaultKind.LINK_DOWN:
            self.result.beacons_revoked += sim.fail_link(event.target)
            self._issue_revocation(event.target)
        elif event.kind is FaultKind.LINK_UP:
            sim.recover_link(event.target)
        elif event.kind is FaultKind.AS_DOWN:
            incident = sim.topology.incident_link_ids(event.target)
            self.result.beacons_revoked += sim.fail_as(event.target)
            for link_id in incident:
                self._issue_revocation(link_id)
        elif event.kind is FaultKind.AS_UP:
            sim.recover_as(event.target)
        elif event.kind is FaultKind.LOSS_START:
            sim.loss_model = BeaconLossModel(self.loss_seed, event.rate)
        elif event.kind is FaultKind.LOSS_END:
            sim.loss_model = None
        else:  # pragma: no cover - schedule validation forbids this
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _issue_revocation(self, link_id: int) -> None:
        if self.revocations is None:
            return
        before = self.revocations.log.bytes(Component.PATH_REVOCATION)
        self.revocations.revoke_link(link_id, self.sim.now)
        self.result.revocations_issued += 1
        self.result.revocation_bytes += (
            self.revocations.log.bytes(Component.PATH_REVOCATION) - before
        )

    def _reannounce_revocations(self) -> None:
        """§4.1: 'failures are re-announced while they persist' — re-issue
        the revocation for any still-failed link whose previous revocation
        expired (the revocation lifetime is one beaconing interval by
        default)."""
        if self.revocations is None:
            return
        failed = list(self.sim.failed_links())
        for asn in self.sim.failed_ases():
            failed.extend(self.sim.topology.incident_link_ids(asn))
        for link_id in sorted(set(failed)):
            if not self.revocations.is_revoked(link_id, self.sim.now):
                self._issue_revocation(link_id)

    # ---------------------------------------------------------- observation

    def _pair_paths(self, origin: int, receiver: int) -> List[Tuple[int, ...]]:
        return [
            pcb.link_ids() for pcb in self.sim.paths_at(receiver, origin)
        ]

    def _capture_pre(self) -> None:
        self._captured_pre = True
        for record, tracker in zip(self.result.pairs, self._trackers):
            paths = self._pair_paths(record.origin, record.receiver)
            record.pre_paths = len(paths)
            record.min_paths = len(paths)
            record.pre_resilience = path_set_resilience(
                self.sim.topology, record.origin, record.receiver, paths
            )
            tracker.armed = True

    def _observe(self, interval: int) -> None:
        for record, tracker in zip(self.result.pairs, self._trackers):
            tracker.observe(
                interval,
                len(self.sim.paths_at(record.receiver, record.origin)),
            )
