"""Fault injection for the BGP convergence simulation.

:class:`~repro.bgp.simulator.BGPSimulation` is an event-driven convergence
run, not an interval-stepped process, so faults are modeled as topology
surgery between convergence runs: the same fault schedule that drives a
beaconing run is collapsed to its failure set, a degraded topology is
built with those links and ASes removed, and BGP re-converges on it. The
differential across the three states — intact, degraded, recovered
(intact again) — is what the harness asserts on:

* no degraded best path traverses a failed link or a failed AS;
* pairs reachable while degraded are a subset of the intact ones;
* recovery is exact: BGP convergence is deterministic, so the recovered
  run reproduces the intact best paths pair for pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.simulator import BGPConfig, BGPSimulation
from ..topology.model import Topology, TopologyError
from .schedule import FaultKind, FaultSchedule

__all__ = ["degraded_topology", "bgp_fault_differential", "BGPFaultReport"]


def degraded_topology(
    topology: Topology,
    failed_links: Iterable[int] = (),
    failed_ases: Iterable[int] = (),
) -> Topology:
    """The topology with the failed elements removed.

    Link and interface ids are preserved (the degraded topology is an
    induced sub-multigraph), so paths found on it are directly comparable
    with paths of the intact topology. Unknown link/AS ids raise
    :class:`~repro.topology.model.TopologyError` — a schedule must not
    silently target nothing.
    """
    downed = set(failed_ases)
    for asn in downed:
        topology.as_node(asn)  # validate against the intact topology
    for link_id in failed_links:
        topology.link(link_id)
    keep = [asn for asn in topology.asns() if asn not in downed]
    sub = topology.subtopology(keep, name=f"{topology.name}-degraded")
    for link_id in sorted(set(failed_links)):
        try:
            sub.remove_link(link_id)
        except TopologyError:
            # The link vanished with a failed endpoint AS already.
            pass
    return sub


@dataclass
class BGPFaultReport:
    """Per-pair best paths across the intact/degraded/recovered states."""

    pairs: List[Tuple[int, int]]
    failed_links: List[int]
    failed_ases: List[int]
    #: Aligned with ``pairs``; ``None`` marks an unreachable pair.
    intact_paths: List[Optional[Tuple[int, ...]]] = field(default_factory=list)
    degraded_paths: List[Optional[Tuple[int, ...]]] = field(
        default_factory=list
    )
    recovered_paths: List[Optional[Tuple[int, ...]]] = field(
        default_factory=list
    )

    def intact_reachable(self) -> int:
        return sum(1 for path in self.intact_paths if path)

    def degraded_reachable(self) -> int:
        return sum(1 for path in self.degraded_paths if path)

    def rerouted_pairs(self) -> List[Tuple[int, int]]:
        """Pairs that stayed reachable while degraded but moved paths."""
        return [
            pair
            for pair, intact, degraded in zip(
                self.pairs, self.intact_paths, self.degraded_paths
            )
            if intact and degraded and intact != degraded
        ]

    def disconnected_pairs(self) -> List[Tuple[int, int]]:
        """Pairs the failures cut off entirely."""
        return [
            pair
            for pair, intact, degraded in zip(
                self.pairs, self.intact_paths, self.degraded_paths
            )
            if intact and not degraded
        ]

    def recovery_exact(self) -> bool:
        """Deterministic convergence: recovered == intact, pair for pair."""
        return self.recovered_paths == self.intact_paths

    def degraded_paths_avoid_failures(self) -> bool:
        """No degraded best path touches a failed AS (links are checked by
        construction: the degraded topology does not contain them)."""
        downed = set(self.failed_ases)
        return not any(
            path and downed.intersection(path) for path in self.degraded_paths
        )


def schedule_failure_sets(
    schedule: FaultSchedule,
) -> Tuple[List[int], List[int]]:
    """The distinct (links, ASes) a schedule fails at any point."""
    links = sorted(
        {
            event.target
            for event in schedule.events
            if event.kind is FaultKind.LINK_DOWN
        }
    )
    ases = sorted(
        {
            event.target
            for event in schedule.events
            if event.kind is FaultKind.AS_DOWN
        }
    )
    return links, ases


def bgp_fault_differential(
    topology: Topology,
    schedule: FaultSchedule,
    pairs: Sequence[Tuple[int, int]],
    *,
    config: Optional[BGPConfig] = None,
) -> BGPFaultReport:
    """Converge BGP on the intact, degraded and recovered topology.

    The schedule's failure set is applied as one simultaneous outage (the
    worst instant of the schedule); the recovered state re-converges the
    intact topology from scratch, which checks that convergence is
    deterministic — the property the beaconing-side harness leans on when
    it asserts post-recovery resilience returns to its pre-failure value.
    """
    failed_links, failed_ases = schedule_failure_sets(schedule)
    report = BGPFaultReport(
        pairs=list(pairs),
        failed_links=failed_links,
        failed_ases=failed_ases,
    )

    def best_paths(sim: BGPSimulation) -> List[Optional[Tuple[int, ...]]]:
        paths: List[Optional[Tuple[int, ...]]] = []
        for origin, receiver in report.pairs:
            if not sim.topology.has_as(origin) or not sim.topology.has_as(
                receiver
            ):
                paths.append(None)
                continue
            paths.append(sim.best_path(receiver, origin))
        return paths

    intact_sim = BGPSimulation(topology, config).run()
    report.intact_paths = best_paths(intact_sim)

    degraded = degraded_topology(topology, failed_links, failed_ases)
    degraded_sim = BGPSimulation(degraded, config).run()
    report.degraded_paths = best_paths(degraded_sim)

    recovered_sim = BGPSimulation(topology, config).run()
    report.recovered_paths = best_paths(recovered_sim)
    return report
