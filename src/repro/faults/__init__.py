"""Deterministic, seed-driven fault injection (§4.1 / §5.3 dynamics).

The subsystem has four layers:

* :mod:`~repro.faults.schedule` — validated, picklable fault schedules
  (link failures/recoveries, AS outages, beacon-loss bursts) drawn from a
  seed;
* :mod:`~repro.faults.injector` — applies a schedule to a
  :class:`~repro.simulation.beaconing.BeaconingSimulation`, drives §4.1
  revocations, and records recovery metrics;
* :mod:`~repro.faults.runner` — process-pool task bodies so fault runs
  fan out and cache through :class:`~repro.runtime.ExperimentRuntime`
  exactly like beaconing series;
* :mod:`~repro.faults.bgp` — the BGP-side differential (topology surgery
  plus re-convergence) for the same schedules.
"""

from .bgp import BGPFaultReport, bgp_fault_differential, degraded_topology
from .injector import (
    BeaconLossModel,
    FaultInjector,
    FaultRunResult,
    PairRecovery,
)
from .runner import FaultOutcome, FaultSpec, FaultTask, execute_fault_run
from .schedule import (
    FaultEvent,
    FaultKind,
    FaultPlanConfig,
    FaultSchedule,
    random_schedule,
)

__all__ = [
    "BGPFaultReport",
    "BeaconLossModel",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultOutcome",
    "FaultPlanConfig",
    "FaultRunResult",
    "FaultSchedule",
    "FaultSpec",
    "FaultTask",
    "PairRecovery",
    "bgp_fault_differential",
    "degraded_topology",
    "execute_fault_run",
    "random_schedule",
]
