"""Deterministic, seed-driven fault schedules.

A :class:`FaultSchedule` is a validated, immutable list of
:class:`FaultEvent` entries pinned to beaconing-interval indices: link
failures and recoveries, AS outages and restarts, and beacon-message loss
bursts. Schedules are plain dataclasses of primitives, so they pickle into
process-pool tasks and fingerprint into the experiment cache unchanged —
the same schedule object is what makes ``--jobs 1`` and ``--jobs N`` fault
runs byte-identical.

:func:`random_schedule` draws a schedule from a seeded
:class:`random.Random`: every failure is paired with a recovery, faults
start only after a warm period, and the last recovery leaves a
re-exploration margin before the horizon, so post-recovery invariants
(resilience returning to its pre-failure value) are well-defined.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..topology.model import Topology

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "FaultPlanConfig",
    "random_schedule",
]


class FaultKind(enum.Enum):
    """What happens at a scheduled interval."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    AS_DOWN = "as-down"
    AS_UP = "as-up"
    LOSS_START = "loss-start"
    LOSS_END = "loss-end"


#: Deterministic application order for events sharing an interval:
#: recoveries before failures (a link flap modeled as UP then DOWN at the
#: same interval nets to DOWN), loss-window edges last.
_KIND_ORDER = {
    FaultKind.LINK_UP: 0,
    FaultKind.AS_UP: 1,
    FaultKind.LINK_DOWN: 2,
    FaultKind.AS_DOWN: 3,
    FaultKind.LOSS_START: 4,
    FaultKind.LOSS_END: 5,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault or repair.

    ``target`` is a link id for ``LINK_*`` events, an ASN for ``AS_*``
    events, and unused (0) for loss-window edges; ``rate`` is the drop
    probability of a ``LOSS_START``.
    """

    interval: int
    kind: FaultKind
    target: int = 0
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError("event interval must be non-negative")
        if self.kind is FaultKind.LOSS_START and not 0.0 < self.rate <= 1.0:
            raise ValueError("loss rate must be in (0, 1]")
        if self.kind is not FaultKind.LOSS_START and self.rate:
            raise ValueError("only LOSS_START events carry a rate")

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.interval, _KIND_ORDER[self.kind], self.target)


_PAIRED = {
    FaultKind.LINK_DOWN: FaultKind.LINK_UP,
    FaultKind.AS_DOWN: FaultKind.AS_UP,
    FaultKind.LOSS_START: FaultKind.LOSS_END,
}


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated fault schedule over ``horizon`` intervals."""

    events: Tuple[FaultEvent, ...]
    horizon: int

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must cover at least one interval")
        ordered = tuple(sorted(self.events, key=FaultEvent.sort_key))
        object.__setattr__(self, "events", ordered)
        self._validate()

    def _validate(self) -> None:
        open_faults: Dict[Tuple[FaultKind, int], int] = {}
        for event in self.events:
            if event.interval >= self.horizon:
                raise ValueError(
                    f"event at interval {event.interval} is outside the "
                    f"horizon of {self.horizon} intervals"
                )
            down = event.kind in _PAIRED
            up = event.kind in _PAIRED.values()
            if not down and not up:
                raise ValueError(f"unknown event kind {event.kind!r}")
            key = (_PAIRED[event.kind] if down else event.kind, event.target)
            if down:
                if key in open_faults:
                    raise ValueError(
                        f"{event.kind.value} on {event.target} at interval "
                        f"{event.interval} while already failed"
                    )
                open_faults[key] = event.interval
            else:
                if key not in open_faults:
                    raise ValueError(
                        f"{event.kind.value} on {event.target} at interval "
                        f"{event.interval} without a preceding failure"
                    )
                del open_faults[key]
        if open_faults:
            unrepaired = sorted(k[1] for k in open_faults)
            raise ValueError(
                f"schedule never repairs targets {unrepaired}; every "
                "failure needs a recovery inside the horizon"
            )

    # ------------------------------------------------------------- queries

    def events_at(self, interval: int) -> List[FaultEvent]:
        return [e for e in self.events if e.interval == interval]

    def first_fault_interval(self) -> Optional[int]:
        return self.events[0].interval if self.events else None

    def last_recovery_interval(self) -> Optional[int]:
        ups = [
            e.interval for e in self.events if e.kind in _PAIRED.values()
        ]
        return max(ups) if ups else None

    def failed_targets(self) -> List[Tuple[FaultKind, int]]:
        """The distinct (failure kind, target) pairs the schedule injects."""
        return sorted(
            {
                (e.kind, e.target)
                for e in self.events
                if e.kind in (FaultKind.LINK_DOWN, FaultKind.AS_DOWN)
            },
            key=lambda pair: (_KIND_ORDER[pair[0]], pair[1]),
        )


@dataclass(frozen=True)
class FaultPlanConfig:
    """Knobs of :func:`random_schedule` (all drawn from one seed)."""

    seed: int = 0
    #: Total beaconing intervals the fault run covers.
    horizon: int = 16
    num_link_failures: int = 2
    num_as_failures: int = 0
    #: Beacon-loss bursts (each with a random window and ``loss_rate``).
    num_loss_bursts: int = 0
    loss_rate: float = 0.25
    #: Outage length range in intervals, inclusive.
    min_outage: int = 1
    max_outage: int = 3
    #: Earliest fault interval (warm period establishing the pre state).
    first_fault: int = 4
    #: Intervals after the last recovery reserved for re-exploration.
    recovery_margin: int = 6

    def __post_init__(self) -> None:
        if self.horizon < 1 or self.first_fault < 1:
            raise ValueError("horizon and first_fault must be positive")
        if not 1 <= self.min_outage <= self.max_outage:
            raise ValueError("need 1 <= min_outage <= max_outage")
        if self.num_loss_bursts and not 0.0 < self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in (0, 1]")
        latest = self.horizon - self.recovery_margin - self.max_outage
        if self.total_faults and latest < self.first_fault:
            raise ValueError(
                "horizon too short for first_fault + max_outage + "
                "recovery_margin"
            )

    @property
    def total_faults(self) -> int:
        return (
            self.num_link_failures
            + self.num_as_failures
            + self.num_loss_bursts
        )


def random_schedule(
    topology: Topology,
    config: FaultPlanConfig,
    *,
    link_ids: Optional[Sequence[int]] = None,
    asns: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Draw a deterministic schedule from ``config.seed``.

    ``link_ids``/``asns`` restrict the candidate fault targets (e.g. CORE
    links only for a core-beaconing run); by default every link and every
    AS of the topology is a candidate. Targets are sampled without
    replacement, so one schedule never fails the same target twice.
    """
    rng = Random(config.seed)
    candidate_links = (
        sorted(link_ids)
        if link_ids is not None
        else sorted(link.link_id for link in topology.links())
    )
    candidate_ases = (
        sorted(asns) if asns is not None else sorted(topology.asns())
    )
    if config.num_link_failures > len(candidate_links):
        raise ValueError("more link failures requested than candidate links")
    if config.num_as_failures > len(candidate_ases):
        raise ValueError("more AS failures requested than candidate ASes")

    latest_start = config.horizon - config.recovery_margin - config.max_outage
    events: List[FaultEvent] = []

    def window() -> Tuple[int, int]:
        start = rng.randint(config.first_fault, latest_start)
        length = rng.randint(config.min_outage, config.max_outage)
        return start, start + length

    for link_id in rng.sample(candidate_links, config.num_link_failures):
        start, end = window()
        events.append(FaultEvent(start, FaultKind.LINK_DOWN, link_id))
        events.append(FaultEvent(end, FaultKind.LINK_UP, link_id))
    for asn in rng.sample(candidate_ases, config.num_as_failures):
        start, end = window()
        events.append(FaultEvent(start, FaultKind.AS_DOWN, asn))
        events.append(FaultEvent(end, FaultKind.AS_UP, asn))
    # Loss windows share one global switch; overlapping draws are merged
    # into a single burst so the schedule stays well-formed.
    windows = sorted(window() for _ in range(config.num_loss_bursts))
    merged: List[Tuple[int, int]] = []
    for start, end in windows:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    for start, end in merged:
        events.append(
            FaultEvent(start, FaultKind.LOSS_START, rate=config.loss_rate)
        )
        events.append(FaultEvent(end, FaultKind.LOSS_END))

    return FaultSchedule(events=tuple(events), horizon=config.horizon)
