"""Process-pool task bodies for beaconing experiment series.

A *series* is one beaconing run — one (algorithm, storage limit, eviction
policy, mode) combination of Figures 5-9 — plus the per-series collection
the figure needs (bytes received per monitor, path-set resilience per AS
pair, per-interface bandwidth). Everything a task needs travels as plain
picklable data (:class:`SeriesSpec` / :class:`SeriesTask`), the task body
is a module-level function, and results come back as :class:`SeriesOutcome`
— the three requirements of ``ProcessPoolExecutor`` dispatch.

Warm-state caching lives here so it works identically in-process
(``--jobs 1``) and in workers: a series with ``warmup_intervals > 0``
snapshots the simulation after the warm-up (metrics reset), keyed by the
content hash of topology + algorithm + beaconing config; a series without
warm-up snapshots the completed run. Either way a rerun skips straight to
the uncached part. Snapshots are byte-faithful pickles of the simulation,
so a resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.resilience import path_set_resilience
from ..core.scoring import DiversityParams
from ..obs import Telemetry
from ..obs.context import NULL_CAUSAL_SPAN
from ..simulation.beaconing import (
    BeaconingConfig,
    BeaconingSimulation,
    baseline_factory,
    diversity_factory,
)
from ..topology.model import Topology
from .cache import ExperimentCache, stable_key, topology_fingerprint

__all__ = [
    "SeriesSpec",
    "SeriesTask",
    "SeriesOutcome",
    "execute_series",
]

#: Per-process memo of topologies loaded from the cache, so a worker
#: executing several series over one topology unpickles it once.
_TOPOLOGY_MEMO: Dict[str, Topology] = {}


@dataclass(frozen=True)
class SeriesSpec:
    """One beaconing series and what to collect from it."""

    name: str
    #: ``"baseline"`` or ``"diversity"`` — resolved to a factory in the
    #: worker (factory closures don't pickle; names + params do).
    algorithm: str
    config: BeaconingConfig
    warmup_intervals: int = 0
    dissemination_limit: int = 5
    params: Optional[DiversityParams] = None
    #: Deterministic per-worker seeding (the beaconing engine itself is
    #: seed-free; this pins any library RNG use to a reproducible state).
    seed: int = 0
    #: ASNs whose received bytes/PCBs the figure reads (Figure 5 monitors).
    collect_received: Tuple[int, ...] = ()
    #: (origin, receiver) pairs to evaluate path-set resilience for
    #: (Figures 6-8); the max-flow analysis runs inside the worker.
    collect_pairs: Tuple[Tuple[int, int], ...] = ()
    #: Collect the per-interface bandwidth CDF input (Figure 9), reported
    #: over the topology's *full* directed-interface set.
    collect_bandwidth: bool = False

    def algorithm_factory(self, kernel: str = "python"):
        if self.algorithm == "baseline":
            return baseline_factory(self.dissemination_limit)
        if self.algorithm == "diversity":
            return diversity_factory(
                self.dissemination_limit, self.params, kernel
            )
        raise ValueError(f"unknown algorithm {self.algorithm!r}")

    def snapshot_key(self, topology_fp: str) -> str:
        """Cache key of this series' simulation snapshot.

        A warm-up snapshot is independent of the measurement duration, so
        sibling series that share warm-up but measure different windows hit
        the same entry; a full-run snapshot includes the duration.
        """
        config = self.config
        shared = [
            topology_fp,
            self.algorithm,
            self.dissemination_limit,
            self.params,
            config.interval,
            config.pcb_lifetime,
            config.storage_limit,
            config.eviction_policy,
            config.mode,
            self.seed,
        ]
        if self.warmup_intervals:
            return stable_key("warm-sim", shared, self.warmup_intervals)
        return stable_key("run-sim", shared, config.duration)


@dataclass(frozen=True)
class SeriesTask:
    """A :class:`SeriesSpec` plus how the worker obtains its inputs."""

    spec: SeriesSpec
    #: Inline topology (cache-less mode) ...
    topology: Optional[Topology] = None
    #: ... or a cache directory + key to load it from (cached mode, which
    #: avoids re-pickling the topology into every task submission).
    cache_dir: Optional[str] = None
    topology_key: Optional[str] = None
    #: Collect metrics + trace events into the outcome. Lives on the task,
    #: not the spec: specs feed cache keys, and observing a run must not
    #: change what it computes or where it is cached.
    telemetry: bool = False
    #: Also run the sampling profiler (wall-clock; non-deterministic).
    profile: bool = False
    #: Run the beaconing through the sharded kernel (``repro.shard``)
    #: when > 1. Lives on the task, not the spec, for the same reason as
    #: ``telemetry``: sharding is byte-identical to single-process by
    #: contract, so it must not change cache keys or results.
    shards: int = 1
    #: Give each shard its own worker process (coordinator policy: only
    #: when the runtime isn't already fanned out across ``--jobs``).
    shard_processes: bool = False
    #: Kernel backend (``repro.kernels``) the run computes through. Lives
    #: on the task, not the spec, for the same reason as ``shards``:
    #: backends are byte-identical by contract, so the choice must not
    #: change cache keys or results.
    backend: str = "python"
    #: Causal-trace identity of this task: the runtime assigns sequential
    #: indices so every task's spans land in their own trace, with ids
    #: derived from (trace_seed, trace_index) — no randomness, no clock.
    #: ``-1`` disables causal tracing for the task.
    trace_index: int = -1
    trace_seed: int = 0


@dataclass
class SeriesOutcome:
    """Everything a figure reads from one series, picklable and small."""

    name: str
    #: Measured window in seconds (``num_intervals * interval``).
    duration: float
    intervals_run: int = 0
    total_pcbs: int = 0
    total_bytes: int = 0
    received_bytes: Dict[int, int] = field(default_factory=dict)
    received_pcbs: Dict[int, int] = field(default_factory=dict)
    #: Aligned with ``spec.collect_pairs``.
    resilience: List[int] = field(default_factory=list)
    interface_bandwidths: List[float] = field(default_factory=list)
    #: Wall time per worker-side phase (setup/warmup/measure/analyze).
    timings: Dict[str, float] = field(default_factory=dict)
    warmup_cached: bool = False
    #: Per-pair stored path sets, keyed by pair — only populated when the
    #: caller needs the raw paths rather than the resilience values.
    path_counts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Worker-side telemetry, shipped back for the parent to merge:
    #: a MetricsRegistry snapshot, the recorded trace events, and the
    #: causal spans of this task's trace.
    metrics: Optional[Dict] = None
    trace: Optional[List] = None
    causal: Optional[List] = None


def _load_topology(task: SeriesTask) -> Topology:
    if task.topology is not None:
        return task.topology
    assert task.cache_dir is not None and task.topology_key is not None
    memo_key = f"{task.cache_dir}:{task.topology_key}"
    topology = _TOPOLOGY_MEMO.get(memo_key)
    if topology is None:
        cache = ExperimentCache(task.cache_dir)
        hit, topology = cache.load(task.topology_key)
        if not hit:
            raise RuntimeError(
                f"topology {task.topology_key!r} missing from cache "
                f"{task.cache_dir!r} (evicted mid-run?)"
            )
        _TOPOLOGY_MEMO[memo_key] = topology
    return topology


def execute_series(task: SeriesTask) -> SeriesOutcome:
    """Run one beaconing series; the process-pool task body.

    Identical code path for serial and parallel execution, which is what
    makes ``--jobs 1`` and ``--jobs N`` byte-identical.
    """
    spec = task.spec
    random.seed(spec.seed)
    timings: Dict[str, float] = {}
    tel: Optional[Telemetry] = None
    if task.telemetry:
        tel = Telemetry.collecting(
            profile=task.profile,
            labels={
                "series": spec.name,
                "algorithm": spec.algorithm,
                "mode": spec.config.mode.value,
            },
        )

    # Causal root span of this task's trace. Ids derive from
    # (trace_seed, trace_index) and times from the tracer's logical tick
    # counter, so the spans are byte-identical whether the task ran
    # in-process or in a pool worker (the worker label is the only
    # process-dependent field, and comparisons scrub it).
    root = NULL_CAUSAL_SPAN
    if tel is not None and task.trace_index >= 0:
        tel.causal.configure(
            seed=task.trace_seed, worker=f"pid{os.getpid()}"
        )
        root = tel.causal.root(
            task.trace_index,
            "runtime",
            f"series:{spec.name}",
            algorithm=spec.algorithm,
            mode=spec.config.mode.value,
        )
        tel.causal.current = root.ctx

    def phase_span(name: str, **attrs):
        if tel is None:
            return NULL_CAUSAL_SPAN
        return tel.causal.begin(root.ctx, "runtime", name, **attrs)

    span = phase_span("setup")
    start = time.perf_counter()
    topology = _load_topology(task)
    cache = ExperimentCache(task.cache_dir) if task.cache_dir else None
    snapshot_key = (
        spec.snapshot_key(topology_fingerprint(topology)) if cache else None
    )
    timings["setup"] = time.perf_counter() - start
    span.end()

    outcome = SeriesOutcome(
        name=spec.name,
        duration=spec.config.num_intervals * spec.config.interval,
    )

    # --- warm-up (or full run), snapshot-cached ---------------------------
    start = time.perf_counter()
    sharded = task.shards > 1
    plan = None
    shard_keys: Optional[List[str]] = None
    if sharded:
        # Imported lazily: repro.shard imports the simulation package, and
        # single-process runs must not pay for (or depend on) the kernel.
        from ..shard import ShardedBeaconing, partition_topology

        plan = partition_topology(topology, task.shards)
        if snapshot_key is not None:
            # Warm state is cached per shard: each shard's simulation
            # pickles under its own key derived from the single-process
            # snapshot key, so different shard counts never mix states.
            shard_keys = [
                stable_key("shard-sim", snapshot_key, plan.num_shards, index)
                for index in range(plan.num_shards)
            ]

    def build_sim(states=None):
        if sharded:
            return ShardedBeaconing(
                topology,
                spec.algorithm_factory(task.backend),
                spec.config,
                plan=plan,
                processes=task.shard_processes,
                initial_states=states,
            )
        return BeaconingSimulation(
            topology, spec.algorithm_factory(task.backend), spec.config
        )

    def store_sim(sim) -> None:
        if cache is None or snapshot_key is None:
            return
        if sharded:
            for key, state in zip(shard_keys, sim.snapshot_states()):
                cache.store(key, state)
        else:
            cache.store(snapshot_key, sim)

    sim: Optional[BeaconingSimulation] = None
    if cache is not None and snapshot_key is not None:
        if sharded:
            states: Optional[list] = []
            for key in shard_keys:
                hit, state = cache.load(key)
                if not hit:
                    # All-or-nothing: a partial set of shard snapshots
                    # rebuilds from scratch rather than mixing epochs.
                    states = None
                    break
                states.append(state)
            if states is not None:
                sim = build_sim(states)
                outcome.warmup_cached = True
        else:
            hit, cached_sim = cache.load(snapshot_key)
            if hit:
                sim = cached_sim
                outcome.warmup_cached = True
    if spec.warmup_intervals:
        span = phase_span("warmup", cached=outcome.warmup_cached)
        if sim is None:
            sim = build_sim()
            sim.run_intervals(spec.warmup_intervals)
            sim.reset_metrics()
            store_sim(sim)
        timings["warmup"] = time.perf_counter() - start
        span.end()
        # Telemetry attaches after the warm-up (cached or not), so only
        # the measured window is observed — identically on both paths.
        if tel is not None:
            sim.attach_telemetry(tel)
        span = phase_span("measure", intervals=spec.config.num_intervals)
        start = time.perf_counter()
        sim.run_intervals(spec.config.num_intervals)
        timings["measure"] = time.perf_counter() - start
        span.end()
    else:
        span = phase_span("measure", cached=outcome.warmup_cached)
        if sim is None:
            sim = build_sim()
            if tel is not None:
                sim.attach_telemetry(tel)
            sim.run()
            store_sim(sim)
        timings["measure"] = time.perf_counter() - start
        span.end()

    outcome.intervals_run = sim.intervals_run
    outcome.total_pcbs = sim.metrics.total_pcbs
    outcome.total_bytes = sim.metrics.total_bytes

    # --- figure-specific collection --------------------------------------
    span = phase_span("analyze")
    start = time.perf_counter()
    for asn in spec.collect_received:
        outcome.received_bytes[asn] = sim.metrics.bytes_received_by(asn)
        outcome.received_pcbs[asn] = sim.metrics.pcbs_received_by(asn)
    for origin, receiver in spec.collect_pairs:
        paths = [pcb.link_ids() for pcb in sim.paths_at(receiver, origin)]
        outcome.path_counts[(origin, receiver)] = len(paths)
        outcome.resilience.append(
            path_set_resilience(topology, origin, receiver, paths)
        )
    if spec.collect_bandwidth:
        outcome.interface_bandwidths = sim.metrics.per_interface_bandwidth(
            outcome.duration, interfaces=sim.directed_interfaces()
        )
    timings["analyze"] = time.perf_counter() - start
    span.end()

    if sharded:
        # Stops shard workers and (in process mode) merges their metric
        # registries — and shard causal spans — into ``tel`` before the
        # snapshot below, so sharded telemetry is byte-identical to
        # single-process telemetry.
        sim.close()
    # The root closes after sim.close() so shard spans (stamped with the
    # coordinator's collect time) still nest inside it.
    root.end(
        intervals=outcome.intervals_run,
        pcbs=outcome.total_pcbs,
        cached=outcome.warmup_cached,
    )
    if tel is not None:
        tel.export_profile()
        outcome.metrics = tel.metrics.snapshot()
        outcome.trace = list(tel.trace.events)
        if tel.causal.enabled and task.trace_index >= 0:
            outcome.causal = tel.causal.export()
    outcome.timings = timings
    return outcome
