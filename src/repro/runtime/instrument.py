"""Lightweight timing/counter instrumentation for experiment runs.

Every run through :class:`~repro.runtime.pool.ExperimentRuntime` produces a
:class:`RunReport`: one :class:`PhaseRecord` per pipeline phase (topology
construction, per-series warm-up, measurement, analysis) with wall time,
whether the phase was served from the cache, and domain counters (beaconing
intervals executed, PCBs disseminated, bytes on the wire). The report is
what makes cache behavior observable — a warm-up phase served from the
snapshot cache shows up as ``cached`` with near-zero wall time — and it is
serializable for the benchmark JSON trajectory.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, Iterator, List, Optional

__all__ = ["PhaseRecord", "RunReport"]


@dataclass
class PhaseRecord:
    """One timed phase of an experiment run."""

    name: str
    seconds: float = 0.0
    #: Whether the phase's work was skipped by a cache hit.
    cached: bool = False
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "cached": self.cached,
            "counters": dict(self.counters),
        }


@dataclass
class RunReport:
    """Per-phase wall time and counters of one experiment invocation."""

    experiment: str = ""
    scale: str = ""
    jobs: int = 1
    #: Beaconing shard count the run was configured with (``--shards``).
    shards: int = 1
    #: Kernel backend the run computed through (``--backend``).
    backend: str = "python"
    phases: List[PhaseRecord] = field(default_factory=list)
    started_at: float = field(default_factory=time.time)
    #: Run-level aggregates folded in from the telemetry registry
    #: (``repro.obs``) when the run collected metrics.
    counters: Dict[str, float] = field(default_factory=dict)
    #: SLO compliance summary (``repro.obs.slo``), populated when the run
    #: evaluated objectives against its collected registry.
    slo: Dict = field(default_factory=dict)

    @contextmanager
    def phase(
        self, name: str, *, cached: bool = False
    ) -> Iterator[PhaseRecord]:
        """Time a block as one phase; the record is open for counters."""
        record = PhaseRecord(name=name, cached=cached)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds = time.perf_counter() - start
            self.phases.append(record)

    def add_phase(
        self,
        name: str,
        seconds: float,
        *,
        cached: bool = False,
        counters: Optional[Dict[str, float]] = None,
    ) -> PhaseRecord:
        record = PhaseRecord(
            name=name,
            seconds=seconds,
            cached=cached,
            counters=dict(counters or {}),
        )
        self.phases.append(record)
        return record

    # ------------------------------------------------------------- queries

    def find(self, name: str) -> Optional[PhaseRecord]:
        for record in self.phases:
            if record.name == name:
                return record
        return None

    def cached_phases(self) -> List[str]:
        return [record.name for record in self.phases if record.cached]

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.phases)

    def counter_total(self, counter: str) -> float:
        return sum(
            record.counters.get(counter, 0.0) for record in self.phases
        )

    def to_dict(self) -> Dict:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "jobs": self.jobs,
            "shards": self.shards,
            "backend": self.backend,
            "started_at": datetime.fromtimestamp(
                self.started_at, tz=timezone.utc
            ).isoformat(),
            "total_seconds": round(self.total_seconds, 6),
            "counters": dict(self.counters),
            "slo": dict(self.slo),
            "phases": [record.to_dict() for record in self.phases],
        }

    def render(self) -> str:
        """Monospace timing table (delegates to the experiments renderer)."""
        from ..experiments.report import format_timing_report

        return format_timing_report(self)
