"""The experiment execution layer: process pool + cache + instrumentation.

:class:`ExperimentRuntime` is what the figure harnesses run their work
through. It owns three orthogonal concerns:

* **fan-out** — independent beaconing series (each storage-limit/algorithm
  combination of Figures 5-9) are dispatched to a ``ProcessPoolExecutor``
  when ``jobs > 1``; ``jobs == 1`` executes the *same* task bodies
  in-process, which keeps tests deterministic and is the reference the
  parallel path must match byte-for-byte;
* **caching** — expensive shared prerequisites (topology construction,
  warm-up snapshots, converged BGP measurements) are memoized to disk via
  :class:`~repro.runtime.cache.ExperimentCache`; pass ``cache=None`` to
  disable;
* **observability** — every phase lands in a
  :class:`~repro.runtime.instrument.RunReport`, including the per-series
  worker-side timings, so cache hits and parallel speedup are visible in
  the CLI output and the benchmark JSON.

The beaconing workload is embarrassingly parallel across series (and, for
the figures, across origin ASes within the per-pair analysis), so the
wall-time win is roughly the worker count for the series-heavy figures.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..obs import Telemetry, get_reporter
from ..topology.model import Topology
from .cache import ExperimentCache, stable_key, topology_fingerprint
from .instrument import RunReport
from .worker import SeriesOutcome, SeriesSpec, SeriesTask, execute_series

__all__ = ["ExperimentRuntime", "default_jobs"]


def default_jobs() -> int:
    """``$REPRO_JOBS``, else the machine's CPU count."""
    override = os.environ.get("REPRO_JOBS")
    if override:
        return max(1, int(override))
    return os.cpu_count() or 1


class ExperimentRuntime:
    """Runs experiment work with fan-out, caching and timing.

    ``cache`` may be an :class:`ExperimentCache`, a directory path, or
    ``None`` (no caching, the default — unit tests and library callers get
    pure functions unless they opt in).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[ExperimentCache, os.PathLike, str, None] = None,
        report: Optional[RunReport] = None,
        telemetry: Optional[Telemetry] = None,
        shards: int = 1,
        backend: str = "python",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        # Fail fast (and with the install hint) before any work is
        # dispatched when the backend is unknown or unavailable.
        from ..kernels import get_backend

        get_backend(backend)
        #: Kernel backend name every task computes through. Byte-identical
        #: results by contract (see ``repro.kernels``), so this changes
        #: wall time only — never results or cache keys.
        self.backend = backend
        self.jobs = jobs
        #: Beaconing shard count for every series/fault run. Sharded runs
        #: are byte-identical to single-process runs by contract, so this
        #: changes wall time only — never results or cache keys.
        self.shards = shards
        #: Process-per-shard only when the runtime itself is not already
        #: fanned out: inside pool workers the shards run in-process
        #: lockstep (same bytes, no process explosion).
        self.shard_processes = shards > 1 and jobs == 1
        if shards > 1 and jobs > 1:
            cpus = os.cpu_count() or 1
            if jobs * shards > cpus:
                get_reporter("repro.runtime").warning(
                    f"--jobs {jobs} x --shards {shards} wants "
                    f"{jobs * shards} workers on {cpus} CPUs; shards will "
                    f"run in-process inside each job (no oversubscription, "
                    f"but no shard speedup either)"
                )
        if cache is None or isinstance(cache, ExperimentCache):
            self.cache = cache
        else:
            self.cache = ExperimentCache(cache)
        self.report = report if report is not None else RunReport(jobs=jobs)
        self.report.jobs = jobs
        self.report.shards = shards
        self.report.backend = backend
        #: When set (and enabled), workers collect per-task registries and
        #: trace streams that are merged back here — commutatively, in task
        #: order — so ``--jobs N`` snapshots match ``--jobs 1`` byte for
        #: byte.
        self.telemetry = telemetry
        #: Next causal trace index. Assigned sequentially at task-prepare
        #: time (deterministic submission order), so every task's trace id
        #: is a pure function of (seed, position) — independent of which
        #: worker runs it or when it completes.
        self._trace_index = 0

    # --------------------------------------------------------- telemetry

    @property
    def _collecting(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    def _merge_telemetry(self, outcome: Any) -> None:
        if not self._collecting:
            return
        extra = (
            {"experiment": self.report.experiment}
            if self.report.experiment
            else None
        )
        self.telemetry.merge_outcome(
            getattr(outcome, "metrics", None),
            getattr(outcome, "trace", None),
            extra_labels=extra,
            causal_spans=getattr(outcome, "causal", None),
        )
        self.report.counters = self.telemetry.metrics.counter_totals()

    def _trace_identity(self) -> dict:
        """Causal identity kwargs for the next task (sequential index)."""
        if not self._collecting or not self.telemetry.causal.enabled:
            return {"trace_index": -1, "trace_seed": 0}
        index = self._trace_index
        self._trace_index += 1
        return {
            "trace_index": index,
            "trace_seed": self.telemetry.causal.seed,
        }

    # ------------------------------------------------------- cached values

    def cached_value(
        self,
        kind: str,
        key_parts: Sequence[Any],
        build: Callable[[], Any],
        *,
        phase: Optional[str] = None,
    ) -> Any:
        """Build-or-load a deterministic prerequisite, timed as a phase."""
        phase_name = phase or kind
        if self.cache is None:
            with self.report.phase(phase_name):
                return build()
        key = stable_key(kind, list(key_parts))
        with self.report.phase(phase_name) as record:
            hit, value = self.cache.get_or_build(key, build)
            record.cached = hit
        return value

    # ----------------------------------------------------------- fan-out

    def run_series(
        self, tasks: Sequence[Tuple[Topology, SeriesSpec]]
    ) -> List[SeriesOutcome]:
        """Execute beaconing series, possibly in parallel.

        Returns outcomes in task order regardless of completion order, so
        results are independent of scheduling.
        """
        prepared = [self._prepare(topology, spec) for topology, spec in tasks]
        workers = min(self.jobs, len(prepared))
        if workers <= 1:
            outcomes = [execute_series(task) for task in prepared]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(execute_series, prepared))
        for outcome in outcomes:
            self._record(outcome)
            self._merge_telemetry(outcome)
        return outcomes

    def run_faults(self, tasks: Sequence[Tuple[Topology, Any]]) -> List[Any]:
        """Execute fault-injection runs (:class:`~repro.faults.runner.
        FaultSpec`), possibly in parallel — same dispatch, shipping and
        ordering discipline as :meth:`run_series`, so ``--jobs 1`` and
        ``--jobs N`` produce pickle-identical results."""
        # Imported lazily: repro.faults.runner imports this package.
        from ..faults.runner import FaultTask, execute_fault_run

        telemetry = self._collecting
        profile = telemetry and self.telemetry.profile.enabled
        prepared = []
        for topology, spec in tasks:
            cache_dir, topology_key = self._ship_topology(topology)
            identity = self._trace_identity()
            if cache_dir is None:
                prepared.append(
                    FaultTask(
                        spec=spec,
                        topology=topology,
                        telemetry=telemetry,
                        profile=profile,
                        shards=self.shards,
                        shard_processes=self.shard_processes,
                        backend=self.backend,
                        **identity,
                    )
                )
            else:
                prepared.append(
                    FaultTask(
                        spec=spec,
                        cache_dir=cache_dir,
                        topology_key=topology_key,
                        telemetry=telemetry,
                        profile=profile,
                        shards=self.shards,
                        shard_processes=self.shard_processes,
                        backend=self.backend,
                        **identity,
                    )
                )
        workers = min(self.jobs, len(prepared))
        if workers <= 1:
            outcomes = [execute_fault_run(task) for task in prepared]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(execute_fault_run, prepared))
        for outcome in outcomes:
            self.report.add_phase(
                f"{outcome.name}:run",
                outcome.timings.get("run", 0.0),
                cached=outcome.cached,
                counters={
                    "events": outcome.result.events_applied,
                    "revocations": outcome.result.revocations_issued,
                    "beacons_revoked": outcome.result.beacons_revoked,
                },
            )
            self._merge_telemetry(outcome)
        return outcomes

    def run_traffic(self, tasks: Sequence[Tuple[Topology, Any]]) -> List[Any]:
        """Execute traffic runs (:class:`~repro.traffic.worker.TrafficSpec`),
        possibly in parallel — same dispatch, shipping and ordering
        discipline as :meth:`run_series`, so ``--jobs 1`` and ``--jobs N``
        produce pickle-identical results."""
        # Imported lazily: repro.traffic.worker imports this package.
        from ..traffic.worker import TrafficTask, execute_traffic_run

        telemetry = self._collecting
        profile = telemetry and self.telemetry.profile.enabled
        prepared = []
        for topology, spec in tasks:
            cache_dir, topology_key = self._ship_topology(topology)
            identity = self._trace_identity()
            if cache_dir is None:
                prepared.append(
                    TrafficTask(
                        spec=spec,
                        topology=topology,
                        telemetry=telemetry,
                        profile=profile,
                        backend=self.backend,
                        **identity,
                    )
                )
            else:
                prepared.append(
                    TrafficTask(
                        spec=spec,
                        cache_dir=cache_dir,
                        topology_key=topology_key,
                        telemetry=telemetry,
                        profile=profile,
                        backend=self.backend,
                        **identity,
                    )
                )
        workers = min(self.jobs, len(prepared))
        if workers <= 1:
            outcomes = [execute_traffic_run(task) for task in prepared]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(execute_traffic_run, prepared))
        for outcome in outcomes:
            self.report.add_phase(
                f"{outcome.name}:control",
                outcome.timings.get("control", 0.0),
                cached=outcome.cached,
            )
            self.report.add_phase(
                f"{outcome.name}:run",
                outcome.timings.get("run", 0.0),
                cached=outcome.cached,
                counters={
                    "flows": outcome.result.flows_started,
                    "packets": outcome.result.packets_forwarded,
                    "macs": outcome.result.macs_verified,
                },
            )
            self._merge_telemetry(outcome)
        return outcomes

    def run_multipath(
        self, tasks: Sequence[Tuple[Topology, Any]]
    ) -> List[Any]:
        """Execute multipath churn runs (:class:`~repro.multipath.worker.
        MultipathSpec`) — same dispatch, shipping and ordering discipline
        as :meth:`run_traffic`, so ``--jobs 1`` and ``--jobs N`` produce
        pickle-identical results."""
        # Imported lazily: repro.multipath.worker imports this package.
        from ..multipath.worker import MultipathTask, execute_multipath_run

        telemetry = self._collecting
        profile = telemetry and self.telemetry.profile.enabled
        prepared = []
        for topology, spec in tasks:
            cache_dir, topology_key = self._ship_topology(topology)
            identity = self._trace_identity()
            if cache_dir is None:
                prepared.append(
                    MultipathTask(
                        spec=spec,
                        topology=topology,
                        telemetry=telemetry,
                        profile=profile,
                        backend=self.backend,
                        **identity,
                    )
                )
            else:
                prepared.append(
                    MultipathTask(
                        spec=spec,
                        cache_dir=cache_dir,
                        topology_key=topology_key,
                        telemetry=telemetry,
                        profile=profile,
                        backend=self.backend,
                        **identity,
                    )
                )
        workers = min(self.jobs, len(prepared))
        if workers <= 1:
            outcomes = [execute_multipath_run(task) for task in prepared]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(execute_multipath_run, prepared))
        for outcome in outcomes:
            self.report.add_phase(
                f"{outcome.name}:control",
                outcome.timings.get("control", 0.0),
                cached=outcome.cached,
            )
            self.report.add_phase(
                f"{outcome.name}:run",
                outcome.timings.get("run", 0.0),
                cached=outcome.cached,
                counters={
                    "intervals": outcome.result.num_intervals,
                    "packets": outcome.result.packets_delivered,
                    "switches": outcome.result.switch_events,
                },
            )
            self._merge_telemetry(outcome)
        return outcomes

    def _ship_topology(
        self, topology: Topology
    ) -> Tuple[Optional[str], Optional[str]]:
        """Store the topology in the cache once; workers load it by key.
        Returns ``(None, None)`` in cache-less mode (inline shipping)."""
        if self.cache is None:
            return None, None
        topology_key = stable_key("topology", topology_fingerprint(topology))
        # load() rather than contains(): a corrupted entry must be replaced
        # here, not first discovered by a worker that can't rebuild it.
        hit, _ = self.cache.load(topology_key)
        if not hit:
            self.cache.store(topology_key, topology)
        return str(self.cache.directory), topology_key

    def _prepare(self, topology: Topology, spec: SeriesSpec) -> SeriesTask:
        cache_dir, topology_key = self._ship_topology(topology)
        telemetry = self._collecting
        profile = telemetry and self.telemetry.profile.enabled
        identity = self._trace_identity()
        if cache_dir is None:
            return SeriesTask(
                spec=spec,
                topology=topology,
                telemetry=telemetry,
                profile=profile,
                shards=self.shards,
                shard_processes=self.shard_processes,
                backend=self.backend,
                **identity,
            )
        return SeriesTask(
            spec=spec,
            cache_dir=cache_dir,
            topology_key=topology_key,
            telemetry=telemetry,
            profile=profile,
            shards=self.shards,
            shard_processes=self.shard_processes,
            backend=self.backend,
            **identity,
        )

    def _record(self, outcome: SeriesOutcome) -> None:
        timings = outcome.timings
        warm_phase = "warmup" if "warmup" in timings else "run"
        warm_seconds = timings.get("warmup", timings.get("measure", 0.0))
        self.report.add_phase(
            f"{outcome.name}:{warm_phase}",
            warm_seconds,
            cached=outcome.warmup_cached,
        )
        if "warmup" in timings:
            self.report.add_phase(
                f"{outcome.name}:measure",
                timings.get("measure", 0.0),
                counters={
                    "intervals": outcome.intervals_run,
                    "pcbs": outcome.total_pcbs,
                    "bytes": outcome.total_bytes,
                },
            )
        else:
            # Full-run series: the counters belong to the run phase.
            self.report.phases[-1].counters.update(
                {
                    "intervals": outcome.intervals_run,
                    "pcbs": outcome.total_pcbs,
                    "bytes": outcome.total_bytes,
                }
            )
        analyze = timings.get("analyze", 0.0)
        if outcome.resilience or outcome.interface_bandwidths:
            self.report.add_phase(f"{outcome.name}:analyze", analyze)
