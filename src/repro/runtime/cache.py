"""Content-addressed disk cache for expensive experiment prerequisites.

The experiment pipeline repeats three costly steps across figures, storage
limits and re-runs: generating the synthetic Internet, constructing the
core/ISD topologies, and driving a beaconing simulation through its
steady-state warm-up. All three are deterministic functions of the
:class:`~repro.experiments.config.ExperimentScale` and the beaconing
configuration, so their results are cached to disk keyed by a content hash
of those inputs (the measurement-platform pattern of caching pipeline state
between stages, cf. Iris).

Cache entries are pickles written atomically (temp file + ``os.replace``)
so concurrent workers of one process pool — or two concurrent experiment
invocations — never observe a half-written entry. A corrupted or
unreadable entry is treated as a miss and deleted, never propagated.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

__all__ = [
    "CACHE_DIR_ENV",
    "ExperimentCache",
    "default_cache_dir",
    "fingerprint",
    "stable_key",
    "topology_fingerprint",
]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry on format changes.
#: "2": BeaconingSimulation snapshots gained fault-injection state
#: (failed-AS set, loss model, loss counter, algorithm factory).
_CACHE_VERSION = "2"

#: Sentinel distinguishing "entry absent" from a cached ``None``.
_MISS = object()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-serializable primitives, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": _canonical(value.value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot fingerprint {type(value).__name__!r}; pass primitives, "
        "dataclasses, enums or containers of them"
    )


def fingerprint(*parts: Any) -> str:
    """Stable content hash of arbitrary (canonicalizable) inputs."""
    payload = json.dumps(
        [_CACHE_VERSION, _canonical(list(parts))],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stable_key(kind: str, *parts: Any) -> str:
    """A namespaced cache key: ``<kind>-<content hash>``."""
    return f"{kind}-{fingerprint(*parts)[:32]}"


def topology_fingerprint(topology) -> str:
    """Content hash of a :class:`~repro.topology.model.Topology`.

    Covers the AS set (with ISD/core flags) and every link with its
    endpoints, interface ids, relationship and location — everything the
    beaconing simulations read.
    """
    ases = sorted(
        (node.asn, node.isd if node.isd is not None else -1, node.is_core)
        for node in topology.ases()
    )
    links = sorted(
        (
            link.link_id,
            link.a.asn,
            link.a.ifid,
            link.b.asn,
            link.b.ifid,
            link.relationship.value,
            link.location,
        )
        for link in topology.links()
    )
    return fingerprint("topology", ases, links)


class ExperimentCache:
    """Pickle-backed key/value store with corruption recovery."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------- io

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; corrupted entries count as misses."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated write, stale format, unpicklable class rename, ...:
            # recover by dropping the entry and rebuilding.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get_or_build(self, key: str, build) -> Tuple[bool, Any]:
        """Load ``key``, or build, store and return it. ``(hit, value)``."""
        hit, value = self.load(key)
        if hit:
            return True, value
        value = build()
        self.store(key, value)
        return False, value

    # ------------------------------------------------------------ inventory

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExperimentCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
