"""Parallel experiment execution with warm-state caching.

The runtime layer fans independent beaconing series out across a process
pool, memoizes expensive deterministic prerequisites (topologies, warm-up
snapshots, BGP measurements) to a content-addressed disk cache, and
instruments every run with a per-phase timing/counter report. See
:mod:`repro.runtime.pool` for the orchestrator and
:mod:`repro.runtime.worker` for the picklable task bodies.
"""

from .cache import (
    CACHE_DIR_ENV,
    ExperimentCache,
    default_cache_dir,
    fingerprint,
    stable_key,
    topology_fingerprint,
)
from .instrument import PhaseRecord, RunReport
from .pool import ExperimentRuntime, default_jobs
from .worker import SeriesOutcome, SeriesSpec, SeriesTask, execute_series

__all__ = [
    "CACHE_DIR_ENV",
    "ExperimentCache",
    "ExperimentRuntime",
    "PhaseRecord",
    "RunReport",
    "SeriesOutcome",
    "SeriesSpec",
    "SeriesTask",
    "default_cache_dir",
    "default_jobs",
    "execute_series",
    "fingerprint",
    "stable_key",
    "topology_fingerprint",
]
