"""Logging-based progress reporting for the CLIs and tools.

Replaces the ad-hoc ``print()`` progress output: every CLI surface gets
a reporter (a stdlib :class:`logging.Logger` under the ``repro``
hierarchy) writing bare messages to stdout at ``INFO``, which keeps the
historical stdout behaviour byte-for-byte while making verbosity a
``--log-level`` flag away (``debug`` adds diagnostics, ``warning``
silences progress).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure", "get_reporter", "LEVELS"]

LEVELS = ("debug", "info", "warning", "error")

_ROOT = "repro"


def configure(level: str = "info", stream=None) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree: bare messages to stdout."""
    if level.lower() not in LEVELS:
        raise ValueError(f"log level must be one of {LEVELS}")
    root = logging.getLogger(_ROOT)
    root.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.handlers[:] = [handler]
    root.propagate = False
    return root


def get_reporter(name: Optional[str] = None) -> logging.Logger:
    """A reporter under the ``repro`` logger tree, lazily configured."""
    if not logging.getLogger(_ROOT).handlers:
        configure()
    if not name:
        return logging.getLogger(_ROOT)
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")
