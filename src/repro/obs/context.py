"""Causal request tracing with deterministic, replayable identifiers.

A :class:`TraceContext` names one node of a request's span tree: the
trace it belongs to, its own span id, and its parent span. Identifiers
are *derived*, never drawn — a trace id is a hash of ``(seed, index)``
where ``index`` is a deterministic per-request counter (the service's
``request_id``, a runtime task's slot), and span ids hash the trace id
plus a per-``(trace, salt)`` mint counter. No ``random``, no wall clock:
two replays of the same seeded scenario mint byte-identical ids, which
is what lets stitched traces participate in the repo's byte-identical
``--jobs 1`` vs ``--jobs N`` contract.

Timestamps come from a pluggable ``clock`` callable. The measurement
service passes its (virtual) clock, so span intervals are simulated
seconds; workers without a meaningful shared clock default to a logical
tick counter that still nests child intervals inside their parents.

Cross-process propagation: a context serializes to a plain dict
(:meth:`TraceContext.to_wire`), travels on the task/command, and the
worker's tracer adopts it as the parent of everything it records. The
worker's span list ships back in the outcome and is folded in with
:meth:`CausalTracer.extend`; :meth:`CausalTracer.stitched` canonically
sorts the merged stream, so stitching is commutative like the metrics
merge. Span-id mint counters are namespaced by a ``salt`` (e.g. the
shard index) so concurrent minters under one trace never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "TraceContext",
    "CausalTracer",
    "NULL_CAUSAL_SPAN",
    "span_problems",
    "build_span_trees",
    "slowest_traces",
    "trace_breakdown",
    "format_span_tree",
    "causal_to_chrome",
]


def _digest(text: str) -> str:
    return blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """One position in a request's span tree, serializable as a dict."""

    trace_id: str
    span_id: str = ""
    parent_id: str = ""

    def to_wire(self) -> Dict[str, str]:
        return {"trace": self.trace_id, "span": self.span_id}

    @classmethod
    def from_wire(cls, wire: Mapping[str, str]) -> "TraceContext":
        return cls(
            trace_id=str(wire["trace"]), span_id=str(wire.get("span", ""))
        )


class _NullCausalSpan:
    """Shared no-op handle returned by a disabled tracer."""

    __slots__ = ()
    ctx: Optional[TraceContext] = None

    def end(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullCausalSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_CAUSAL_SPAN = _NullCausalSpan()


class _CausalSpan:
    """An open span: holds its child context until :meth:`end` records it."""

    __slots__ = ("tracer", "ctx", "category", "name", "t0", "attrs", "worker")

    def __init__(self, tracer, ctx, category, name, t0, attrs, worker):
        self.tracer = tracer
        self.ctx = ctx
        self.category = category
        self.name = name
        self.t0 = t0
        self.attrs = attrs
        self.worker = worker

    def end(self, *, at: Optional[float] = None, **attrs) -> None:
        if attrs:
            self.attrs.update(attrs)
        self.tracer._close(self, at)

    def __enter__(self) -> "_CausalSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and not issubclass(exc_type, GeneratorExit):
            self.attrs["error"] = True
            self.attrs.setdefault("reason", exc_type.__name__)
        self.end()
        return False


class CausalTracer:
    """Mints deterministic spans and stitches worker streams back in."""

    def __init__(
        self,
        enabled: bool = True,
        *,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        worker: str = "",
        salt: str = "",
    ) -> None:
        self.enabled = enabled
        self.seed = seed
        self.clock = clock
        self.worker = worker
        self.salt = salt
        self.spans: List[Dict] = []
        #: The context worker fan-out parents to (set by the task body).
        self.current: Optional[TraceContext] = None
        self._mint: Dict[tuple, int] = {}
        self._tick = 0.0

    def configure(
        self,
        *,
        seed: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        worker: Optional[str] = None,
        salt: Optional[str] = None,
    ) -> "CausalTracer":
        """Late binding of the deterministic inputs (seed, clock, lane)."""
        if seed is not None:
            self.seed = seed
        if clock is not None:
            self.clock = clock
        if worker is not None:
            self.worker = worker
        if salt is not None:
            self.salt = salt
        return self

    # ------------------------------------------------------------- identity

    def trace_id(self, index: int) -> str:
        """The trace id of deterministic request/task slot ``index``."""
        return _digest(f"{self.seed}:{index}")

    def derive_context(self, index: int) -> TraceContext:
        """The root slot of trace ``index`` (no span minted yet)."""
        return TraceContext(trace_id=self.trace_id(index))

    def _mint_span_id(self, trace_id: str, salt: str) -> str:
        key = (trace_id, salt)
        n = self._mint.get(key, 0)
        self._mint[key] = n + 1
        return _digest(f"{trace_id}:{salt}:{n}")

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock()
        self._tick += 1.0
        return self._tick

    def now(self) -> float:
        """The current clock reading, without advancing the logical tick
        (for retrospective spans anchored to a coordinator's timeline)."""
        if self.clock is not None:
            return self.clock()
        return self._tick

    # ------------------------------------------------------------ recording

    def root(self, index: int, category: str, name: str, *,
             at: Optional[float] = None, **attrs):
        """Open the root span of trace slot ``index``."""
        if not self.enabled:
            return NULL_CAUSAL_SPAN
        return self.begin(
            self.derive_context(index), category, name, at=at, **attrs
        )

    def begin(self, parent: Optional[TraceContext], category: str, name: str,
              *, at: Optional[float] = None, salt: Optional[str] = None,
              worker: Optional[str] = None, **attrs):
        """Open a span under ``parent`` (or a trace root when its span id
        is empty); close it with ``handle.end()`` or as a context manager
        (which tags ``error=True`` when the body raises)."""
        if not self.enabled or parent is None:
            return NULL_CAUSAL_SPAN
        ctx = TraceContext(
            trace_id=parent.trace_id,
            span_id=self._mint_span_id(
                parent.trace_id, self.salt if salt is None else salt
            ),
            parent_id=parent.span_id,
        )
        return _CausalSpan(
            self, ctx, category, name,
            self._now() if at is None else at,
            dict(attrs),
            self.worker if worker is None else worker,
        )

    span = begin  # the context-manager spelling reads better at call sites

    def record(self, parent: Optional[TraceContext], category: str,
               name: str, t0: float, t1: float, *,
               salt: Optional[str] = None, worker: Optional[str] = None,
               **attrs) -> Optional[TraceContext]:
        """Record a retrospective span with explicit endpoints (e.g. a
        queue wait measured between submit and worker pickup)."""
        if not self.enabled or parent is None:
            return None
        handle = self.begin(
            parent, category, name, at=t0, salt=salt, worker=worker, **attrs
        )
        handle.end(at=t1)
        return handle.ctx

    def _close(self, span: _CausalSpan, at: Optional[float]) -> None:
        record = {
            "trace": span.ctx.trace_id,
            "span": span.ctx.span_id,
            "parent": span.ctx.parent_id,
            "cat": span.category,
            "name": span.name,
            "t0": round(span.t0, 9),
            "t1": round(self._now() if at is None else at, 9),
            "worker": span.worker,
        }
        if span.attrs:
            record["args"] = span.attrs
        self.spans.append(record)

    # ------------------------------------------------------------- stitching

    def export(self) -> List[Dict]:
        """The recorded spans, for shipping across a process boundary."""
        return list(self.spans)

    def extend(self, spans: Iterable[Dict], *,
               worker: Optional[str] = None) -> int:
        """Fold a worker's shipped span list into this tracer."""
        count = 0
        for span in spans:
            merged = dict(span)
            if worker is not None:
                merged["worker"] = worker
            self.spans.append(merged)
            count += 1
        return count

    def stitched(self) -> List[Dict]:
        """The merged stream in canonical order — independent of worker
        completion order, like the metrics merge."""
        return sorted(
            self.spans,
            key=lambda s: (
                s["trace"], s["t0"], s["t1"], s["name"], s["span"]
            ),
        )


# ----------------------------------------------------------------- analysis


def span_problems(spans: Iterable[Dict]) -> List[str]:
    """Well-formedness violations of a stitched stream (empty = sound).

    Checks that every non-root span's parent exists, that parent links
    form no cycle, and that child intervals nest within their parents.
    """
    spans = list(spans)
    by_id = {span["span"]: span for span in spans}
    problems: List[str] = []
    if len(by_id) != len(spans):
        problems.append("duplicate span ids in stream")
    for span in spans:
        parent_id = span.get("parent", "")
        if not parent_id:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span['span']} ({span['name']}) has missing "
                f"parent {parent_id}"
            )
            continue
        if parent["trace"] != span["trace"]:
            problems.append(
                f"span {span['span']} parents across traces"
            )
        if not (
            parent["t0"] <= span["t0"] and span["t1"] <= parent["t1"]
        ):
            problems.append(
                f"span {span['span']} ({span['name']}) "
                f"[{span['t0']}, {span['t1']}] escapes parent "
                f"{parent['name']} [{parent['t0']}, {parent['t1']}]"
            )
    # Cycle check: walk each span's parent chain with a visited set.
    for span in spans:
        seen = set()
        node = span
        while node is not None and node.get("parent", ""):
            if node["span"] in seen:
                problems.append(
                    f"cycle through span {span['span']} ({span['name']})"
                )
                break
            seen.add(node["span"])
            node = by_id.get(node["parent"])
    return problems


def build_span_trees(spans: Iterable[Dict]) -> Dict[str, List[Dict]]:
    """Group a stream into per-trace trees: ``{trace_id: [root nodes]}``
    where a node is ``{"span": record, "children": [nodes]}`` with
    children in interval order."""
    nodes = {
        span["span"]: {"span": span, "children": []} for span in spans
    }
    trees: Dict[str, List[Dict]] = {}
    for node in nodes.values():
        span = node["span"]
        parent = nodes.get(span.get("parent", ""))
        if parent is not None:
            parent["children"].append(node)
        else:
            trees.setdefault(span["trace"], []).append(node)
    for node in nodes.values():
        node["children"].sort(
            key=lambda n: (n["span"]["t0"], n["span"]["t1"], n["span"]["span"])
        )
    for roots in trees.values():
        roots.sort(key=lambda n: (n["span"]["t0"], n["span"]["span"]))
    return trees


def slowest_traces(spans: Iterable[Dict], top: int = 5) -> List[Dict]:
    """The ``top`` root nodes by duration, slowest first (ties by id)."""
    trees = build_span_trees(spans)
    roots = [node for nodes in trees.values() for node in nodes]
    roots.sort(
        key=lambda n: (
            -(n["span"]["t1"] - n["span"]["t0"]),
            n["span"]["trace"],
            n["span"]["span"],
        )
    )
    return roots[:top]


def trace_breakdown(root: Dict) -> Dict[str, float]:
    """Critical-path legs of one tree: time per direct-child span name
    (descendants fold into their top-level leg) plus the root's own
    unattributed remainder under ``"(self)"``."""
    span = root["span"]
    total = span["t1"] - span["t0"]
    legs: Dict[str, float] = {}
    for child in root["children"]:
        c = child["span"]
        legs[c["name"]] = legs.get(c["name"], 0.0) + (c["t1"] - c["t0"])
    legs["(self)"] = max(0.0, total - sum(legs.values()))
    return legs


def format_span_tree(root: Dict, indent: int = 0) -> List[str]:
    """Render one tree as indented ``name [t0..t1] attrs`` lines."""
    span = root["span"]
    args = span.get("args", {})
    attrs = (
        " " + " ".join(f"{k}={args[k]}" for k in sorted(args))
        if args else ""
    )
    duration = span["t1"] - span["t0"]
    lines = [
        f"{'  ' * indent}{span['cat']}/{span['name']} "
        f"[{span['t0']:.6f}s +{duration:.6f}s]{attrs}"
    ]
    for child in root["children"]:
        lines.extend(format_span_tree(child, indent + 1))
    return lines


def causal_to_chrome(spans: Iterable[Dict]) -> List[Dict]:
    """Convert causal spans to Chrome trace events, one pid lane per
    worker so stitched multi-worker traces render separately."""
    spans = list(spans)
    workers = sorted({span.get("worker", "") for span in spans})
    lane = {worker: index for index, worker in enumerate(workers)}
    events: List[Dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": index,
            "tid": 0,
            "args": {"name": f"worker:{worker or 'main'}"},
        }
        for worker, index in sorted(lane.items(), key=lambda kv: kv[1])
    ]
    for span in spans:
        event = {
            "ph": "X",
            "cat": span["cat"],
            "name": span["name"],
            "ts": round(span["t0"] * 1e6, 3),
            "dur": round((span["t1"] - span["t0"]) * 1e6, 3),
            "pid": lane[span.get("worker", "")],
            "tid": 0,
            "args": {
                "trace": span["trace"],
                "span": span["span"],
                "parent": span.get("parent", ""),
                **span.get("args", {}),
            },
        }
        events.append(event)
    return events
