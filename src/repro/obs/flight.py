"""Dump-on-failure flight recorder.

Always-on services can't afford to persist every event, but when a
request times out or an invariant trips, the events *leading up to* the
failure are exactly what a post-mortem needs. The flight recorder keeps
a bounded ring of recent events per subsystem (admission, execute,
lookup, shard, ...) at O(1) cost per record, and only materializes them
— to memory always, to a JSONL file when a directory is configured —
when a trigger fires: request timeout, retry exhaustion,
``DeadlockError``, or invariant failure.

Timestamps come from the same pluggable clock as causal spans (the
service's virtual clock), so dumps are deterministic and replayable.
Dump files are named ``flight-{seq:03d}-{trigger}.jsonl`` with a
monotonically increasing sequence number; a ``max_dumps`` cap keeps a
pathological run (every request timing out) from writing thousands of
near-identical post-mortems — further triggers are counted but
suppressed.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional

__all__ = ["FlightRecorder", "NULL_FLIGHT"]


class FlightRecorder:
    """Per-subsystem ring buffers that dump JSONL on failure triggers."""

    def __init__(
        self,
        enabled: bool = True,
        *,
        capacity: int = 256,
        max_dumps: int = 8,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.clock = clock
        self.directory: Optional[Path] = None
        self.rings: Dict[str, Deque[Dict]] = {}
        #: Every dump taken this run (also written to ``directory`` if set).
        self.dumps: List[Dict] = []
        self.suppressed = 0
        self._seq = 0
        self._events = 0

    def configure(
        self,
        *,
        clock: Optional[Callable[[], float]] = None,
        directory: Optional[str] = None,
        capacity: Optional[int] = None,
        max_dumps: Optional[int] = None,
    ) -> "FlightRecorder":
        if clock is not None:
            self.clock = clock
        if directory is not None:
            self.directory = Path(directory)
        if capacity is not None:
            self.capacity = capacity
        if max_dumps is not None:
            self.max_dumps = max_dumps
        return self

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def record(self, subsystem: str, event: str, **fields) -> None:
        """Append one event to ``subsystem``'s ring (evicting the oldest
        once the ring is at capacity)."""
        if not self.enabled:
            return
        ring = self.rings.get(subsystem)
        if ring is None:
            ring = self.rings[subsystem] = deque(maxlen=self.capacity)
        self._events += 1
        record = {
            "seq": self._events, "t": round(self._now(), 9), "event": event
        }
        if fields:
            record.update(fields)
        ring.append(record)

    def dump(self, trigger: str, *, detail: Optional[Dict] = None) -> Optional[Dict]:
        """Materialize every ring into a post-mortem record.

        Returns the dump dict (also kept in :attr:`dumps`), or ``None``
        when disabled or the ``max_dumps`` cap suppressed it.
        """
        if not self.enabled:
            return None
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        self._seq += 1
        dump = {
            "dump": self._seq,
            "trigger": trigger,
            "t": round(self._now(), 9),
            "detail": detail or {},
            "events": {
                subsystem: list(ring)
                for subsystem, ring in sorted(self.rings.items())
            },
        }
        self.dumps.append(dump)
        if self.directory is not None:
            self._write(dump)
        return dump

    def _write(self, dump: Dict) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"flight-{dump['dump']:03d}-{dump['trigger']}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            header = {
                key: dump[key] for key in ("dump", "trigger", "t", "detail")
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for subsystem, events in dump["events"].items():
                for event in events:
                    record = {"subsystem": subsystem}
                    record.update(event)
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def summary(self) -> Dict:
        """Run-level accounting for reports: triggers taken/suppressed
        and total events recorded."""
        return {
            "dumps": len(self.dumps),
            "suppressed": self.suppressed,
            "events": self._events,
            "triggers": [d["trigger"] for d in self.dumps],
        }


NULL_FLIGHT = FlightRecorder(enabled=False)
