"""repro.obs — zero-dependency observability for the whole stack.

Five cooperating pieces, bundled by :class:`Telemetry`:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms with labels and quantiles, Prometheus text
  exposition, JSON snapshots, and an order-independent merge for
  process-pool fan-out;
* :class:`~repro.obs.trace.TraceRecorder` — structured span/instant
  events on a monotonic clock, written as JSONL and convertible to the
  Chrome trace-event format by ``tools/trace_report.py``;
* :class:`~repro.obs.context.CausalTracer` — request-scoped causal
  spans with deterministic trace/span ids, parent links across process
  boundaries, and commutative stitching;
* :class:`~repro.obs.flight.FlightRecorder` — bounded per-subsystem
  event rings dumped as a JSONL post-mortem on failure triggers;
* :class:`~repro.obs.profile.Profiler` — an opt-in sampling timer for
  the simulator event loop and the forwarding loop.

SLO evaluation (:mod:`repro.obs.slo`) reads the registry; it carries no
state of its own and so is not part of the bundle.

Instrumented components default to :data:`NULL_TELEMETRY`, whose parts
are all disabled: the hot-path cost of unused telemetry is an attribute
load and a no-op call, never a format or an allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .context import (
    CausalTracer,
    TraceContext,
    causal_to_chrome,
    span_problems,
)
from .flight import FlightRecorder
from .log import configure as configure_logging
from .log import get_reporter
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import Profiler
from .slo import (
    DEFAULT_SERVICE_SLOS,
    SLOSpec,
    evaluate_slos,
    slo_summary,
)
from .trace import (
    TraceRecorder,
    category_summary,
    chrome_trace,
    format_category_summary,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "TraceRecorder",
    "CausalTracer",
    "TraceContext",
    "FlightRecorder",
    "SLOSpec",
    "DEFAULT_SERVICE_SLOS",
    "evaluate_slos",
    "slo_summary",
    "Telemetry",
    "NULL_TELEMETRY",
    "configure_logging",
    "get_reporter",
    "chrome_trace",
    "causal_to_chrome",
    "span_problems",
    "category_summary",
    "format_category_summary",
]


@dataclass
class Telemetry:
    """The observability bundle instrumented components accept."""

    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=False)
    )
    trace: TraceRecorder = field(
        default_factory=lambda: TraceRecorder(enabled=False)
    )
    profile: Profiler = field(default_factory=lambda: Profiler(enabled=False))
    causal: CausalTracer = field(
        default_factory=lambda: CausalTracer(enabled=False)
    )
    flight: FlightRecorder = field(
        default_factory=lambda: FlightRecorder(enabled=False)
    )

    @property
    def enabled(self) -> bool:
        return (
            self.metrics.enabled
            or self.trace.enabled
            or self.profile.enabled
            or self.causal.enabled
        )

    @classmethod
    def collecting(
        cls,
        *,
        profile: bool = False,
        labels: Optional[Mapping[str, str]] = None,
    ) -> "Telemetry":
        """A fully enabled bundle; ``labels`` tag every metric recorded."""
        return cls(
            metrics=MetricsRegistry(enabled=True, const_labels=labels),
            trace=TraceRecorder(enabled=True, measure_overhead=profile),
            profile=Profiler(enabled=profile),
            causal=CausalTracer(enabled=True),
            flight=FlightRecorder(enabled=True),
        )

    def export_profile(self) -> None:
        """Fold profiler + self-overhead results into the metrics registry.

        Called once at the end of a collection window. Profile gauges are
        wall-clock estimates, so they only appear in snapshots when
        profiling was explicitly enabled — the deterministic (default)
        snapshot never contains them.
        """
        if not self.profile.enabled or not self.metrics.enabled:
            return
        for phase, stats in sorted(self.profile.report().items()):
            labels = {"phase": phase}
            self.metrics.gauge(
                "profile.seconds_estimate", labels, mode="sum"
            ).add(stats["seconds_estimate"])
            self.metrics.gauge(
                "profile.calls", labels, mode="sum"
            ).add(stats["calls"])
        # Telemetry's own cost: time spent appending trace events. This is
        # the "overhead reported in the snapshot itself".
        self.metrics.gauge(
            "obs.trace_record_seconds", mode="sum"
        ).add(self.trace.record_seconds)
        self.metrics.gauge("obs.trace_events", mode="sum").add(
            float(self.trace.records)
        )

    def merge_outcome(
        self,
        metrics_snapshot: Optional[Mapping],
        trace_events: Optional[list],
        *,
        extra_labels: Optional[Mapping[str, str]] = None,
        causal_spans: Optional[list] = None,
    ) -> None:
        """Fold one worker outcome (snapshot + events + causal spans)
        into this bundle."""
        if metrics_snapshot:
            self.metrics.merge_snapshot(
                metrics_snapshot, extra_labels=extra_labels
            )
        if trace_events:
            self.trace.extend(trace_events)
        if causal_spans:
            self.causal.extend(causal_spans)


#: Shared disabled bundle; the default for every instrumented component.
NULL_TELEMETRY = Telemetry()
