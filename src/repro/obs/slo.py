"""Declarative service-level objectives with error-budget accounting.

An :class:`SLOSpec` names an objective over instruments already in the
:class:`~repro.obs.metrics.MetricsRegistry` — no extra hot-path
recording. Two kinds:

``latency``
    The fraction of observations at or under ``threshold`` seconds must
    reach ``objective``. Evaluated from histogram buckets, so thresholds
    should sit on a bucket bound (e.g. one of
    ``SERVICE_LATENCY_BUCKETS``) — there the good-count is *exact*, not
    interpolated, keeping evaluation deterministic across replays.

``error_rate``
    The fraction of counter increments whose ``bad_label`` is **not** in
    ``bad_values`` must reach ``objective``.

``match`` restricts evaluation to label sets carrying the given pairs
(e.g. only ``kind=lookup_paths`` latencies); instruments matching on a
superset of labels are merged, mirroring a PromQL ``sum by`` selection.

Error budgets follow the SRE convention: a run of ``total`` events at
objective ``o`` grants ``(1 - o) * total`` allowed failures; ``burn`` is
the fraction of that grant already spent (burn > 1 means the SLO is
blown). :func:`evaluate_slos` is pure — callable live from the service
maintenance loop (which re-exports the results as ``slo.*`` gauges for
Prometheus scrapes) and again post-run for the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "SLOSpec",
    "SLOResult",
    "DEFAULT_SERVICE_SLOS",
    "BENCH_SERVICE_SLOS",
    "evaluate_slos",
    "slo_summary",
    "render_slo_table",
    "export_slo_gauges",
]


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over an existing metric."""

    name: str
    metric: str
    kind: str  # "latency" | "error_rate"
    objective: float
    #: Latency SLOs: the per-event deadline in seconds (ideally a bucket
    #: bound of the underlying histogram for exact evaluation).
    threshold: float = 0.0
    #: Only label sets carrying all these pairs participate.
    match: Tuple[Tuple[str, str], ...] = ()
    #: Error-rate SLOs: which label marks failures, and its bad values.
    bad_label: str = "status"
    bad_values: Tuple[str, ...] = ("timeout", "failed")

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective <= 1.0:
            raise ValueError("objective must be in (0, 1]")


@dataclass
class SLOResult:
    """The outcome of evaluating one spec against a registry."""

    spec: SLOSpec
    total: int = 0
    good: int = 0
    exact: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def bad(self) -> int:
        return self.total - self.good

    @property
    def attained(self) -> float:
        if self.total == 0:
            return 1.0
        return self.good / self.total

    @property
    def compliant(self) -> bool:
        return self.attained >= self.spec.objective

    def budget(self) -> Dict[str, float]:
        allowed = (1.0 - self.spec.objective) * self.total
        spent = float(self.bad)
        burn = spent / allowed if allowed > 1e-12 else (
            0.0 if spent == 0 else float(self.total or 1)
        )
        return {
            "allowed": round(allowed, 9),
            "spent": spent,
            "remaining": round(max(0.0, allowed - spent), 9),
            "burn": round(burn, 9),
        }

    def to_dict(self) -> Dict:
        spec = self.spec
        entry = {
            "name": spec.name,
            "kind": spec.kind,
            "metric": spec.metric,
            "objective": spec.objective,
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "attained": round(self.attained, 9),
            "compliant": self.compliant,
            "budget": self.budget(),
        }
        if spec.kind == "latency":
            entry["threshold"] = spec.threshold
        if spec.match:
            entry["match"] = dict(spec.match)
        if self.notes:
            entry["notes"] = list(self.notes)
        return entry


def _matches(labels: Mapping[str, str], match: Tuple[Tuple[str, str], ...]) -> bool:
    return all(labels.get(key) == value for key, value in match)


def _evaluate_latency(registry: MetricsRegistry, spec: SLOSpec) -> SLOResult:
    result = SLOResult(spec)
    matched = 0
    for labels, histogram in registry.histograms_named(spec.metric):
        if not _matches(labels, spec.match):
            continue
        matched += 1
        cumulative = 0
        aligned = False
        for bound, count in zip(histogram.bounds, histogram.counts):
            if bound > spec.threshold + 1e-12:
                break
            cumulative += count
            if abs(bound - spec.threshold) <= 1e-12:
                aligned = True
        result.total += histogram.count
        result.good += cumulative
        if not aligned:
            # The threshold sits between bounds: the cumulative count at
            # the last bound at-or-under it is a conservative good-count.
            result.exact = False
    if matched == 0:
        result.notes.append("no_data")
    elif not result.exact:
        result.notes.append("threshold_between_buckets")
    return result


def _evaluate_error_rate(registry: MetricsRegistry, spec: SLOSpec) -> SLOResult:
    result = SLOResult(spec)
    matched = 0
    for labels, counter in registry.counters_named(spec.metric):
        if not _matches(labels, spec.match):
            continue
        matched += 1
        count = int(round(counter.value))
        result.total += count
        if labels.get(spec.bad_label) not in spec.bad_values:
            result.good += count
    if matched == 0:
        result.notes.append("no_data")
    return result


def evaluate_slos(
    registry: MetricsRegistry, specs: Sequence[SLOSpec]
) -> List[SLOResult]:
    """Evaluate every spec against the registry's current state."""
    results = []
    for spec in specs:
        if spec.kind == "latency":
            results.append(_evaluate_latency(registry, spec))
        else:
            results.append(_evaluate_error_rate(registry, spec))
    return results


def slo_summary(results: Sequence[SLOResult]) -> Dict:
    """The report-facing compliance summary (deterministic primitives)."""
    return {
        "compliant": all(r.compliant for r in results),
        "objectives": [r.to_dict() for r in results],
    }


def render_slo_table(results: Sequence[SLOResult]) -> str:
    """A human-readable compliance table for run reports."""
    lines = ["SLO compliance:"]
    for result in results:
        spec = result.spec
        target = (
            f"<= {spec.threshold}s" if spec.kind == "latency"
            else f"{spec.bad_label} ok"
        )
        budget = result.budget()
        verdict = "OK" if result.compliant else "VIOLATED"
        note = f" [{','.join(result.notes)}]" if result.notes else ""
        lines.append(
            f"  {spec.name:<24} {target:<12} attained "
            f"{result.attained:>8.4%} / objective {spec.objective:.2%}  "
            f"budget burn {budget['burn']:.2f}  {verdict}{note}"
        )
    return "\n".join(lines)


def export_slo_gauges(
    registry: MetricsRegistry, results: Sequence[SLOResult]
) -> None:
    """Publish results as ``slo.*`` gauges so a live Prometheus scrape of
    the registry carries compliance alongside the raw instruments."""
    if not registry.enabled:
        return
    for result in results:
        labels = {"slo": result.spec.name}
        registry.gauge("slo.attained", labels, mode="min").set(
            round(result.attained, 9)
        )
        registry.gauge("slo.compliant", labels, mode="min").set(
            1.0 if result.compliant else 0.0
        )
        registry.gauge("slo.budget_burn", labels, mode="max").set(
            result.budget()["burn"]
        )


#: The measurement service's default objectives. Thresholds sit on
#: ``SERVICE_LATENCY_BUCKETS`` bounds so evaluation is exact.
DEFAULT_SERVICE_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(
        name="lookup-latency",
        metric="service.latency_seconds",
        kind="latency",
        threshold=2.5,
        objective=0.97,
        match=(("kind", "lookup_paths"),),
    ),
    SLOSpec(
        name="queue-wait",
        metric="service.queue_wait_seconds",
        kind="latency",
        threshold=2.5,
        objective=0.90,
    ),
    SLOSpec(
        name="request-errors",
        metric="service.completed",
        kind="error_rate",
        objective=0.95,
    ),
)

#: Objectives for the wall-clock throughput bench (zero-cost handlers):
#: latencies are pure scheduling overhead, so the deadline is tight.
BENCH_SERVICE_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(
        name="bench-latency",
        metric="service.latency_seconds",
        kind="latency",
        threshold=0.25,
        objective=0.99,
    ),
    SLOSpec(
        name="bench-errors",
        metric="service.completed",
        kind="error_rate",
        objective=0.999,
    ),
)
