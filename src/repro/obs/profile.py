"""Opt-in sampling profiler for simulation and forwarding hot loops.

The profiler is a *sampling timer*, not a tracer: every call to a phase
is counted, but only every ``sample_every``-th call is actually timed
(two ``perf_counter`` reads), and the total is extrapolated from the
sampled mean. That keeps the enabled overhead proportional to
``1/sample_every`` on loops that run millions of iterations — the
simulator event loop and the per-packet forwarding loop — while still
ranking hot phases accurately.

Disabled profilers return the shared no-op span, so the guard on a hot
path is one attribute load and one branch.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from .trace import NULL_SPAN

__all__ = ["Profiler"]


class _ProfiledSpan:
    __slots__ = ("profiler", "phase", "start")

    def __init__(self, profiler: "Profiler", phase: str) -> None:
        self.profiler = profiler
        self.phase = phase

    def __enter__(self) -> "_ProfiledSpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self.start
        profiler = self.profiler
        profiler._seconds[self.phase] = (
            profiler._seconds.get(self.phase, 0.0) + elapsed
        )
        profiler._samples[self.phase] = (
            profiler._samples.get(self.phase, 0) + 1
        )
        return False


class Profiler:
    """Counts phase entries; times a deterministic 1-in-N sample."""

    def __init__(self, enabled: bool = False, sample_every: int = 8) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = enabled
        self.sample_every = sample_every
        self._calls: Dict[str, int] = {}
        self._samples: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    def sample(self, phase: str):
        """Context manager for one entry into ``phase``.

        Always counts the call; times it only on the sampling grid.
        """
        if not self.enabled:
            return NULL_SPAN
        calls = self._calls.get(phase, 0)
        self._calls[phase] = calls + 1
        if calls % self.sample_every:
            return NULL_SPAN
        return _ProfiledSpan(self, phase)

    # ------------------------------------------------------------- reports

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-phase calls, timed samples, and extrapolated seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for phase, calls in self._calls.items():
            samples = self._samples.get(phase, 0)
            sampled = self._seconds.get(phase, 0.0)
            estimate = sampled * (calls / samples) if samples else 0.0
            out[phase] = {
                "calls": calls,
                "samples": samples,
                "seconds_sampled": sampled,
                "seconds_estimate": estimate,
            }
        return out

    def hot_phases(self, count: int = 10) -> List[Tuple[str, float]]:
        """Top phases by extrapolated wall seconds, hottest first."""
        report = self.report()
        ranked = sorted(
            report.items(),
            key=lambda item: (-item[1]["seconds_estimate"], item[0]),
        )
        return [
            (phase, stats["seconds_estimate"])
            for phase, stats in ranked[:count]
        ]
