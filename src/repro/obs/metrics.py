"""Process-local metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs`. Instruments are
identified by ``(name, labels)``; values are plain Python numbers, so a
snapshot is a tree of primitives that pickles across process-pool
boundaries and serializes to deterministic JSON (``sort_keys`` plus a
stable entry ordering). Worker registries are merged back into the parent
with commutative operations only (counters and histograms add; gauges
combine by an explicit ``max``/``min``/``sum`` mode), which is what makes
``--jobs N`` snapshots byte-identical to ``--jobs 1``.

Disabled registries hand out a shared no-op instrument, so instrumented
hot paths pay one attribute load and a no-op method call — never a label
dict or a format call.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
]

LabelsKey = Tuple[Tuple[str, str], ...]

_GAUGE_MODES = ("max", "min", "sum")

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value with a commutative cross-worker merge mode."""

    __slots__ = ("value", "mode")

    def __init__(self, mode: str = "max") -> None:
        if mode not in _GAUGE_MODES:
            raise ValueError(f"gauge mode must be one of {_GAUGE_MODES}")
        self.value = 0.0
        self.mode = mode

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def combine(self, other_value: float) -> None:
        if self.mode == "sum":
            self.value += other_value
        elif self.mode == "max":
            self.value = max(self.value, other_value)
        else:
            self.value = min(self.value, other_value)


class Histogram:
    """A fixed-bucket histogram (Prometheus-style cumulative exposition).

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit +Inf bucket catches the rest. Bucket counts are stored
    non-cumulative internally and accumulated on exposition.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b >= c for b, c in zip(ordered, ordered[1:])
        ):
            raise ValueError("bucket bounds must be non-empty and increasing")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within the
        owning bucket. Observations in the +Inf bucket clamp to the
        largest finite bound (the Prometheus ``histogram_quantile``
        convention); an empty histogram estimates 0."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if count > 0 and cumulative + count >= rank:
                return lower + (bound - lower) * (
                    (rank - cumulative) / count
                )
            cumulative += count
            lower = bound
        return self.bounds[-1]

    def quantiles(self) -> Dict[str, float]:
        """The standard exposition set (p50/p95/p99), rounded so worker
        merges and replays serialize identically."""
        return {
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }


class MetricsRegistry:
    """Creates, stores, merges and serializes instruments.

    ``const_labels`` are merged into every instrument's labels at
    creation — a worker tags everything it records with its series and
    algorithm once instead of at each call site.
    """

    def __init__(
        self,
        enabled: bool = True,
        const_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.enabled = enabled
        self.const_labels = dict(const_labels or {})
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    # --------------------------------------------------------- instruments

    def _key(
        self, name: str, labels: Optional[Mapping[str, str]]
    ) -> Tuple[str, LabelsKey]:
        merged = dict(self.const_labels)
        if labels:
            merged.update(labels)
        return (name, _labels_key(merged))

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        mode: str = "max",
    ) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(mode)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Sequence[float],
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # ----------------------------------------------------------- snapshots

    def snapshot(self) -> Dict:
        """A deterministic tree of primitives (sorted by name, labels)."""

        def entries(table, render):
            out = []
            for (name, labels), instrument in sorted(table.items()):
                entry = {"name": name, "labels": dict(labels)}
                entry.update(render(instrument))
                out.append(entry)
            return out

        return {
            "counters": entries(
                self._counters, lambda c: {"value": c.value}
            ),
            "gauges": entries(
                self._gauges, lambda g: {"value": g.value, "mode": g.mode}
            ),
            "histograms": entries(
                self._histograms,
                lambda h: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "quantiles": h.quantiles(),
                },
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=2)

    def merge_snapshot(
        self,
        snapshot: Mapping,
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a worker snapshot into this registry.

        Counters and histogram buckets add; gauges combine by their
        recorded mode. Every operation is commutative, so the result is
        independent of worker completion order.
        """
        extra = dict(extra_labels or {})
        for entry in snapshot.get("counters", ()):
            labels = {**entry["labels"], **extra}
            self.counter(entry["name"], labels).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            labels = {**entry["labels"], **extra}
            self.gauge(
                entry["name"], labels, mode=entry.get("mode", "max")
            ).combine(entry["value"])
        for entry in snapshot.get("histograms", ()):
            labels = {**entry["labels"], **extra}
            histogram = self.histogram(
                entry["name"], entry["bounds"], labels
            )
            if list(histogram.bounds) != list(entry["bounds"]):
                raise ValueError(
                    f"bucket mismatch merging histogram {entry['name']!r}"
                )
            for index, count in enumerate(entry["counts"]):
                histogram.counts[index] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]

    def counter_totals(self, prefix: str = "") -> Dict[str, float]:
        """Counter values summed across label sets, keyed by name."""
        totals: Dict[str, float] = {}
        for (name, _), instrument in self._counters.items():
            if prefix and not name.startswith(prefix):
                continue
            totals[name] = totals.get(name, 0.0) + instrument.value
        return totals

    def histograms_named(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Histogram]]:
        """All label sets recorded under histogram ``name`` (for SLO
        evaluation), as ``(labels, instrument)`` pairs in sorted order."""
        return [
            (dict(labels), instrument)
            for (n, labels), instrument in sorted(self._histograms.items())
            if n == name
        ]

    def counters_named(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Counter]]:
        """All label sets recorded under counter ``name``, sorted."""
        return [
            (dict(labels), instrument)
            for (n, labels), instrument in sorted(self._counters.items())
            if n == name
        ]

    # ---------------------------------------------------------- exposition

    def to_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) of the whole registry."""
        lines: List[str] = []

        def fmt_value(value: float) -> str:
            return repr(value) if value != int(value) else str(int(value))

        def fmt_labels(pairs: Iterable[Tuple[str, str]]) -> str:
            rendered = ",".join(
                f'{_PROM_NAME.sub("_", k)}="{v}"' for k, v in pairs
            )
            return f"{{{rendered}}}" if rendered else ""

        typed = set()

        def emit(name: str, kind: str, labels: LabelsKey, value: float,
                 suffix: str = "") -> None:
            prom = _PROM_NAME.sub("_", name)
            if prom not in typed:
                lines.append(f"# TYPE {prom} {kind}")
                typed.add(prom)
            lines.append(
                f"{prom}{suffix}{fmt_labels(labels)} {fmt_value(value)}"
            )

        for (name, labels), counter in sorted(self._counters.items()):
            emit(name, "counter", labels, counter.value)
        for (name, labels), gauge in sorted(self._gauges.items()):
            emit(name, "gauge", labels, gauge.value)
        for (name, labels), histogram in sorted(self._histograms.items()):
            prom = _PROM_NAME.sub("_", name)
            if prom not in typed:
                lines.append(f"# TYPE {prom} histogram")
                typed.add(prom)
            cumulative = 0
            for bound, count in zip(
                list(histogram.bounds) + [float("inf")], histogram.counts
            ):
                cumulative += count
                le = "+Inf" if bound == float("inf") else repr(bound)
                lines.append(
                    f"{prom}_bucket{fmt_labels(labels + (('le', le),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{prom}_sum{fmt_labels(labels)} {repr(histogram.sum)}"
            )
            lines.append(
                f"{prom}_count{fmt_labels(labels)} {histogram.count}"
            )
            for q, estimate in sorted(histogram.quantiles().items()):
                quantile = f"0.{q[1:]}"
                lines.append(
                    f"{prom}{fmt_labels(labels + (('quantile', quantile),))}"
                    f" {repr(estimate)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
