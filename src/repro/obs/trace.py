"""Structured trace-event stream: JSONL spans and instants.

Events are recorded against a per-recorder monotonic clock
(``time.perf_counter`` rebased to the recorder's creation) in
microseconds, and their shape is deliberately a superset of the Chrome
trace-event format: a span is a complete event (``ph == "X"``) with a
duration, an instant is ``ph == "i"``. ``tools/trace_report.py`` wraps a
recorded JSONL stream into a ``chrome://tracing`` /
https://ui.perfetto.dev loadable JSON document.

Worker processes record into their own recorders; the parent folds the
shipped event lists back in with :meth:`TraceRecorder.extend`, giving
each worker stream its own ``tid`` so tracks stay separate in the viewer
(worker clocks are independent — each track starts at zero).

A disabled recorder returns a shared no-op span object from
:meth:`span`, so tracing hooks on hot paths cost an attribute load and a
branch, never an allocation.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "TraceRecorder",
    "chrome_trace",
    "category_summary",
    "format_category_summary",
]


class _NullSpan:
    """Reusable no-op context manager for disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("recorder", "category", "name", "args", "start")

    def __init__(
        self, recorder: "TraceRecorder", category: str, name: str, args: Dict
    ) -> None:
        self.recorder = recorder
        self.category = category
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        recorder = self.recorder
        end = time.perf_counter()
        event = {
            "ph": "X",
            "cat": self.category,
            "name": self.name,
            "ts": round((self.start - recorder._t0) * 1e6, 3),
            "dur": round((end - self.start) * 1e6, 3),
            "pid": 0,
            "tid": 0,
        }
        if exc and exc[0] is not None:
            # The body raised: still close the span, tagged so failed
            # intervals stand out in the viewer and in reports.
            self.args["error"] = True
            self.args.setdefault("reason", exc[0].__name__)
        if self.args:
            event["args"] = self.args
        recorder._record(event)
        return False


class TraceRecorder:
    """Collects span/instant events in memory; writes JSONL on demand."""

    def __init__(
        self, enabled: bool = True, *, measure_overhead: bool = False
    ) -> None:
        self.enabled = enabled
        self.events: List[Dict] = []
        self.record_seconds = 0.0
        self.records = 0
        self._measure = measure_overhead
        self._t0 = time.perf_counter()
        self._next_tid = 1

    # ----------------------------------------------------------- recording

    def span(self, category: str, name: str, **args):
        """Context manager timing one span; a no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, category, name, args)

    def instant(self, category: str, name: str, **args) -> None:
        if not self.enabled:
            return
        event = {
            "ph": "i",
            "s": "t",
            "cat": category,
            "name": name,
            "ts": round((time.perf_counter() - self._t0) * 1e6, 3),
            "pid": 0,
            "tid": 0,
        }
        if args:
            event["args"] = args
        self._record(event)

    def _record(self, event: Dict) -> None:
        if self._measure:
            start = time.perf_counter()
            self.events.append(event)
            self.record_seconds += time.perf_counter() - start
        else:
            self.events.append(event)
        self.records += 1

    def extend(
        self, events: Iterable[Dict], *, tid: Optional[int] = None
    ) -> int:
        """Fold a worker's event list in under its own thread track."""
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
        else:
            self._next_tid = max(self._next_tid, tid + 1)
        count = 0
        for event in events:
            merged = dict(event)
            merged["tid"] = tid
            self.events.append(merged)
            count += 1
        self.records += count
        return count

    # ------------------------------------------------------------- output

    def write_jsonl(self, path) -> int:
        """One JSON object per line; returns the number of events."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return len(self.events)


# --------------------------------------------------------------- reporting


def chrome_trace(events: Iterable[Dict]) -> Dict:
    """Wrap recorded events into a Chrome trace-event JSON document.

    The recorded shape already matches the trace-event format; this adds
    the document envelope and defaults the fields the viewer requires.
    """
    trace_events = []
    for event in events:
        out = dict(event)
        out.setdefault("ph", "X")
        out.setdefault("pid", 0)
        out.setdefault("tid", 0)
        out.setdefault("ts", 0.0)
        if out["ph"] == "X":
            out.setdefault("dur", 0.0)
        trace_events.append(out)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def category_summary(events: Iterable[Dict]) -> Dict[str, Dict[str, float]]:
    """Per-category totals: span count/duration and instant count."""
    summary: Dict[str, Dict[str, float]] = {}
    for event in events:
        category = event.get("cat", "uncategorized")
        bucket = summary.setdefault(
            category, {"spans": 0, "instants": 0, "duration_us": 0.0}
        )
        if event.get("ph") == "X":
            bucket["spans"] += 1
            bucket["duration_us"] += float(event.get("dur", 0.0))
        else:
            bucket["instants"] += 1
    return summary


def format_category_summary(
    summary: Dict[str, Dict[str, float]]
) -> str:
    """Monospace per-category duration table for terminal output."""
    lines = [
        f"  {'category':20s} {'spans':>7s} {'instants':>9s} "
        f"{'total ms':>10s} {'mean us':>9s}"
    ]
    for category in sorted(
        summary, key=lambda c: -summary[c]["duration_us"]
    ):
        bucket = summary[category]
        spans = int(bucket["spans"])
        mean = bucket["duration_us"] / spans if spans else 0.0
        lines.append(
            f"  {category:20s} {spans:7d} {int(bucket['instants']):9d} "
            f"{bucket['duration_us'] / 1e3:10.3f} {mean:9.1f}"
        )
    return "\n".join(lines)
