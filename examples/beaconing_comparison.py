#!/usr/bin/env python3
"""Mini Figure 5 + 6: baseline vs path-diversity-based beaconing.

Runs both path construction algorithms on one core network (paper timing:
10-minute intervals, 6-hour PCB lifetime, dissemination limit 5) and
reports what the paper's evaluation reports: communication overhead and
the quality (failure resilience / capacity) of the disseminated paths.

Run:  python examples/beaconing_comparison.py [num_core_ases]
"""

import sys

from repro.analysis import (
    EmpiricalCDF,
    flow_graph_from_topology,
    max_flow,
    path_set_resilience,
)
from repro.experiments import sample_pairs
from repro.simulation import (
    BeaconingConfig,
    BeaconingSimulation,
    baseline_factory,
    diversity_factory,
)
from repro.topology import generate_core_mesh


def quality_summary(sim, topo, pairs):
    graph = flow_graph_from_topology(topo)
    fractions = []
    for origin, receiver in pairs:
        paths = [p.link_ids() for p in sim.paths_at(receiver, origin)]
        achieved = path_set_resilience(topo, origin, receiver, paths)
        optimum = max_flow(graph, origin, receiver)
        fractions.append(achieved / optimum if optimum else 1.0)
    return EmpiricalCDF.from_values(fractions)


def main() -> None:
    num_ases = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    topo = generate_core_mesh(num_ases, mean_degree=5.0, seed=7)
    config = BeaconingConfig(storage_limit=30)
    pairs = sample_pairs(topo.asns(), 40, seed=7)
    print(f"core network: {topo.num_ases} ASes, {topo.num_links} links "
          f"(parallel links included)")
    print(f"beaconing: {config.num_intervals} intervals x "
          f"{config.interval:.0f}s, storage limit {config.storage_limit}\n")

    results = {}
    for label, factory in [
        ("baseline", baseline_factory()),
        ("diversity", diversity_factory()),
    ]:
        sim = BeaconingSimulation(topo, factory, config).run()
        quality = quality_summary(sim, topo, pairs)
        results[label] = (sim.metrics, quality)
        print(f"== {label} ==")
        print(f"  PCBs sent:        {sim.metrics.total_pcbs:,}")
        print(f"  bytes on wire:    {sim.metrics.total_bytes:,}")
        print(f"  mean PCB size:    {sim.metrics.mean_pcb_size():.0f} B")
        print(f"  resilience (fraction of optimal min-cut): "
              f"median {quality.median:.0%}, mean {quality.mean:.0%}\n")

    base_bytes = results["baseline"][0].total_bytes
    div_bytes = results["diversity"][0].total_bytes
    print(f"diversity sends {base_bytes / div_bytes:.1f}x fewer bytes "
          f"than the baseline while finding more resilient path sets")
    print("(steady-state suppression grows the gap further; see "
          "benchmarks/bench_figure5.py)")


if __name__ == "__main__":
    main()
