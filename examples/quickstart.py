#!/usr/bin/env python3
"""Quickstart: build a two-ISD SCION network, look up paths, send a packet.

Demonstrates the full public API surface in one minute:
topology -> control plane (beaconing + path servers) -> path lookup
(up/core/down segments, shortcuts, peering) -> data-plane delivery over
MAC-verified hop fields -> fast failover after a link failure.

Run:  python examples/quickstart.py
"""

from repro.control import ScionNetwork
from repro.simulation import BeaconingConfig, BeaconingMode
from repro.topology import Relationship, Topology


def build_topology() -> Topology:
    """Two ISDs: cores {1,2} and {3,4}; leaves 11, 12 (ISD 1) and 21
    (ISD 2); a peering link between leaves 12 and 21."""
    topo = Topology("quickstart")
    for asn, isd, core in [
        (1, 1, True), (2, 1, True), (3, 2, True), (4, 2, True),
        (11, 1, False), (12, 1, False), (21, 2, False),
    ]:
        topo.add_as(asn, isd=isd, is_core=core)
    topo.add_link(1, 2, Relationship.CORE)
    topo.add_link(2, 3, Relationship.CORE)
    topo.add_link(3, 4, Relationship.CORE)
    topo.add_link(1, 4, Relationship.CORE)
    topo.add_link(1, 11, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 11, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(11, 12, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(3, 21, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(12, 21, Relationship.PEER_PEER)
    return topo


def main() -> None:
    topo = build_topology()
    fast = dict(
        interval=600.0, duration=3600.0, pcb_lifetime=6 * 3600.0,
        storage_limit=10,
    )
    network = ScionNetwork(
        topo,
        algorithm="diversity",
        core_config=BeaconingConfig(mode=BeaconingMode.CORE, **fast),
        intra_config=BeaconingConfig(mode=BeaconingMode.INTRA_ISD, **fast),
    ).run()

    print("== paths from AS 12 (ISD 1) to AS 21 (ISD 2) ==")
    paths = network.lookup_paths(12, 21)
    for path in paths:
        flavour = []
        if path.uses_peering:
            flavour.append("peering")
        elif path.is_shortcut:
            flavour.append("shortcut")
        print(f"  {' -> '.join(map(str, path.asns))} "
              f"({len(path.link_ids)} links{', ' + flavour[0] if flavour else ''})")

    print("\n== sending a packet over the best path ==")
    trajectory = network.send_packet(12, 21, payload_bytes=1200)
    print(f"  delivered via {' -> '.join(map(str, trajectory))}")

    print("\n== link failure + multi-path failover ==")
    peering_link = topo.links_between(12, 21)[0]
    network.fail_link(peering_link.link_id)
    print(f"  failed the 12--21 peering link (link {peering_link.link_id})")
    alive = network.usable_paths(12, 21)
    print(f"  {len(alive)} alternative path(s) remain after SCMP revocation")
    trajectory = network.send_packet(12, 21, path=alive[0])
    print(f"  re-delivered via {' -> '.join(map(str, trajectory))}")

    print(f"\ncontrol-plane messages logged: {len(network.log)}")


if __name__ == "__main__":
    main()
