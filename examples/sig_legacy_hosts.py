#!/usr/bin/env python3
"""SIG deployment (§3.4): legacy IP hosts over a SCION backbone.

A provider runs a carrier-grade SIG; a customer site runs a CPE SIG. A
plain IP packet from a legacy host is mapped to the destination SCION AS
via the ASMap, encapsulated into a SCION packet, carried across the
simulated SCION network on a real forwarding path (hop-field MACs and
all), and decapsulated on the far side — no change to either host.

Run:  python examples/sig_legacy_hosts.py
"""

from repro.control import ScionNetwork
from repro.dataplane import build_forwarding_path
from repro.deployment import ASMap, CarrierGradeSIG, IPPacket, ScionIPGateway
from repro.dataplane.router import deliver
from repro.simulation import BeaconingConfig, BeaconingMode
from repro.topology import Relationship, Topology


def main() -> None:
    # -- a small two-ISD SCION network -------------------------------------
    topo = Topology("sig-demo")
    for asn, isd, core in [
        (1, 1, True), (2, 2, True), (10, 1, False), (20, 2, False),
    ]:
        topo.add_as(asn, isd=isd, is_core=core)
    topo.add_link(1, 2, Relationship.CORE)
    topo.add_link(1, 2, Relationship.CORE)  # parallel core link
    topo.add_link(1, 10, Relationship.PROVIDER_CUSTOMER)
    topo.add_link(2, 20, Relationship.PROVIDER_CUSTOMER)
    fast = dict(interval=600.0, duration=3600.0,
                pcb_lifetime=6 * 3600.0, storage_limit=10)
    network = ScionNetwork(
        topo,
        core_config=BeaconingConfig(mode=BeaconingMode.CORE, **fast),
        intra_config=BeaconingConfig(mode=BeaconingMode.INTRA_ISD, **fast),
    ).run()

    # -- the gateways -------------------------------------------------------
    asmap = ASMap()
    asmap.add("192.0.2.0/24", isd=2, asn=20)     # the remote site
    asmap.add("198.51.100.0/24", isd=1, asn=10)  # our own site
    cgsig = CarrierGradeSIG(1, 10, asmap)
    cgsig.attach_customer("home-office", "198.51.100.0/25")
    remote_sig = ScionIPGateway(2, 20, asmap, local_ip="192.0.2.1")

    # -- a legacy IP packet crosses the SCION network ------------------------
    ip_packet = IPPacket("198.51.100.7", "192.0.2.42", payload_bytes=512)
    print(f"legacy packet: {ip_packet.src_ip} -> {ip_packet.dst_ip} "
          f"({ip_packet.total_bytes} B), customer "
          f"{cgsig.customer_of(ip_packet.src_ip)!r}")

    paths = network.lookup_paths(10, 20)
    print(f"SIG found {len(paths)} SCION path(s); using "
          f"{' -> '.join(map(str, paths[0].asns))}")
    forwarding = build_forwarding_path(
        topo, paths[0].asns, paths[0].link_ids,
        timestamp=network.now, expiry=paths[0].expires_at,
    )
    scion_packet = cgsig.encapsulate(ip_packet, forwarding)
    assert scion_packet is not None
    print(f"encapsulated: {scion_packet.source} -> "
          f"{scion_packet.destination}, {scion_packet.wire_bytes()} B on wire")

    trajectory = deliver(topo, scion_packet, now=network.now)
    print(f"delivered across {' -> '.join(map(str, trajectory))} "
          "(hop-field MACs verified at every border router)")

    out = remote_sig.decapsulate(scion_packet)
    print(f"decapsulated at AS 20: IP packet to {out.dst_ip} — "
          "neither host ever saw SCION")

    # -- unmapped destinations stay on the legacy Internet -------------------
    stray = IPPacket("198.51.100.7", "203.0.113.1")
    assert cgsig.encapsulate(stray, forwarding) is None
    print(f"unmapped destination {stray.dst_ip}: left on the legacy path "
          f"(ASMap misses: {cgsig.unroutable})")


if __name__ == "__main__":
    main()
