#!/usr/bin/env python3
"""IXP deployment models (§3.5, Figure 4): big switch vs exposed topology.

The same three member ISPs interconnect at an IXP twice:

* as a **big switch** — the IXP transparently facilitates bilateral peering
  links; the SCION control plane sees member-to-member links only;
* as an **exposed topology** — the IXP operates one SCION AS per site with
  redundant inter-site links, and members gain multi-path *through* the
  IXP's fabric, including failover onto its backup links.

Run:  python examples/ixp_deployment.py
"""

from repro.analysis import unit_max_flow_between
from repro.deployment import ExposedIXP, big_switch_peering
from repro.topology import Relationship, Topology


def members_topology() -> Topology:
    """Three member ISPs below two upstream cores (no direct links)."""
    topo = Topology("ixp-demo")
    topo.add_as(1, isd=1, is_core=True)
    topo.add_as(2, isd=1, is_core=True)
    topo.add_link(1, 2, Relationship.CORE)
    for member in (10, 11, 12):
        topo.add_as(member, isd=1)
        topo.add_link(1 if member != 12 else 2, member,
                      Relationship.PROVIDER_CUSTOMER)
    return topo


def main() -> None:
    # ---- model 1: big switch ----------------------------------------------
    topo = members_topology()
    before = unit_max_flow_between(topo, 10, 11)
    created = big_switch_peering(topo, [10, 11, 12], location="SwissIX")
    after = unit_max_flow_between(topo, 10, 11)
    print("== big switch (SwissIX model) ==")
    print(f"  bilateral peering links created: {len(created)}")
    print(f"  member 10 <-> 11 min-cut: {before} -> {after}")
    print("  the IXP is invisible to the SCION control plane\n")

    # ---- model 2: exposed internal topology --------------------------------
    topo = members_topology()
    ixp = ExposedIXP(topo, name="openix")
    ixp.add_sites(4, first_asn=65000, isd=1, redundant_pairs=[(0, 2), (1, 3)])
    ixp.attach_member(10, 0)
    ixp.attach_member(11, 2)
    ixp.attach_member(12, 1)
    # A second port for member 10 at another site (multi-path into the IXP).
    ixp.attach_member(10, 3)

    print("== exposed topology (Figure 4 model) ==")
    print(f"  IXP sites (SCION ASes): {ixp.site_asns}")
    print(f"  internal links (ring + backups): "
          f"{len(ixp.internal_link_ids())}")
    flow = unit_max_flow_between(topo, 10, 11)
    print(f"  member 10 <-> 11 min-cut through the IXP fabric: {flow}")

    # Fail one inter-site link: the redundant fabric keeps members joined.
    ring_link = ixp.internal_link_ids()[0]
    topo.remove_link(ring_link)
    flow_after = unit_max_flow_between(topo, 10, 11)
    print(f"  after an inter-site link failure: min-cut {flow_after} "
          "(backup links keep the members connected)")
    print("  members can select paths through specific IXP sites — "
          "latency/bandwidth optimization inside the IXP")


if __name__ == "__main__":
    main()
