#!/usr/bin/env python3
"""The paper's founding use case (§3.1): a bank replaces leased lines.

A central bank connects N branches with K data centers. With leased lines
that is N x K (redundancy: x2 each, over disjoint physical routes); over
SCION it is N + K uplinks, with redundancy and failover provided by the
network's inherent multi-path. This example works out the economics and
then *demonstrates* the availability property: branch-to-datacenter traffic
survives a provider-side link failure without any provisioning action.

Run:  python examples/leased_line_replacement.py
"""

from repro.control import ScionNetwork
from repro.deployment import compare_costs
from repro.simulation import BeaconingConfig, BeaconingMode
from repro.topology import Relationship, Topology

BRANCHES = 8
DATA_CENTERS = 2


def build_bank_network() -> Topology:
    """One ISD run by two ISP core ASes; every branch/DC is a SCION AS
    multihomed to both ISPs (the §3.4 'native SCION customer' case)."""
    topo = Topology("bank")
    isp_a, isp_b = 1, 2
    topo.add_as(isp_a, isd=1, is_core=True, name="ISP-A")
    topo.add_as(isp_b, isd=1, is_core=True, name="ISP-B")
    topo.add_link(isp_a, isp_b, Relationship.CORE, location="IX-west")
    topo.add_link(isp_a, isp_b, Relationship.CORE, location="IX-east")

    asn = 100
    for i in range(BRANCHES + DATA_CENTERS):
        name = f"branch-{i}" if i < BRANCHES else f"dc-{i - BRANCHES}"
        topo.add_as(asn + i, isd=1, name=name)
        topo.add_link(isp_a, asn + i, Relationship.PROVIDER_CUSTOMER)
        topo.add_link(isp_b, asn + i, Relationship.PROVIDER_CUSTOMER)
    return topo


def main() -> None:
    print("== economics (Section 3.1) ==")
    comparison = compare_costs(
        BRANCHES, DATA_CENTERS, redundancy=2,
        leased_line_monthly=2500.0, scion_connection_monthly=900.0,
    )
    req = comparison.requirement
    print(f"  leased lines needed:      {req.leased_lines_needed}"
          f"  ({comparison.leased_total:,.0f} $/month)")
    print(f"  SCION connections needed: {req.scion_connections_needed}"
          f"  ({comparison.scion_total:,.0f} $/month)")
    print(f"  savings factor:           {comparison.savings_factor:.1f}x")

    print("\n== availability demonstration ==")
    topo = build_bank_network()
    fast = dict(interval=600.0, duration=3600.0,
                pcb_lifetime=6 * 3600.0, storage_limit=10)
    network = ScionNetwork(
        topo,
        core_config=BeaconingConfig(mode=BeaconingMode.CORE, **fast),
        intra_config=BeaconingConfig(mode=BeaconingMode.INTRA_ISD, **fast),
    ).run()

    branch, datacenter = 100, 100 + BRANCHES  # first branch, first DC
    paths = network.lookup_paths(branch, datacenter)
    print(f"  branch {branch} -> DC {datacenter}: {len(paths)} paths "
          f"(multihomed via both ISPs)")

    # Fail the branch's uplink to ISP-A; traffic shifts to ISP-B paths.
    uplink = topo.links_between(1, branch)[0]
    network.fail_link(uplink.link_id)
    alive = network.usable_paths(branch, datacenter)
    assert alive, "multi-path must survive a single uplink failure"
    trajectory = network.send_packet(branch, datacenter, path=alive[0])
    print(f"  after ISP-A uplink failure: {len(alive)} paths remain; "
          f"packet took {' -> '.join(map(str, trajectory))}")
    print("  no provisioning action, no BGP involved: failover is "
          "endpoint path selection")


if __name__ == "__main__":
    main()
