#!/usr/bin/env python3
"""Latency-optimized path construction (the §4.2 extension).

The paper leaves multi-criteria path construction as future work but
sketches the requirement: latency optimization needs information beyond
interface numbers. This example wires that information channel (a
LatencyModel over the inter-domain links) into the latency-aware path
construction algorithm and compares the latency of the disseminated path
sets against the AS-path-length baseline.

Run:  python examples/latency_optimization.py
"""

from repro.analysis import EmpiricalCDF
from repro.core import LatencyAwareAlgorithm
from repro.simulation import (
    BeaconingConfig,
    BeaconingSimulation,
    baseline_factory,
)
from repro.topology import LatencyModel, generate_core_mesh


def best_latencies(sim, model):
    values = []
    for receiver in sim.participant_asns():
        for origin in sim.originator_asns():
            if origin == receiver:
                continue
            paths = sim.paths_at(receiver, origin)
            if paths:
                values.append(
                    min(model.path_latency(p.link_ids()) for p in paths)
                )
    return EmpiricalCDF.from_values(values)


def main() -> None:
    topo = generate_core_mesh(14, mean_degree=5.0, seed=21)
    model = LatencyModel(topo, seed=21, min_latency=0.001, max_latency=0.08)
    config = BeaconingConfig(storage_limit=15)
    print(f"core network: {topo.num_ases} ASes, {topo.num_links} links; "
          f"link latencies {model.min_latency * 1e3:.0f}-"
          f"{model.max_latency * 1e3:.0f} ms\n")

    def latency_factory(asn, topology):
        return LatencyAwareAlgorithm(asn, topology, model)

    runs = {
        "baseline (AS-path length)": baseline_factory(),
        "latency-aware (extension)": latency_factory,
    }
    results = {}
    for label, factory in runs.items():
        sim = BeaconingSimulation(topo, factory, config).run()
        cdf = best_latencies(sim, model)
        results[label] = cdf
        print(f"== {label} ==")
        print(f"  best-path latency: median {cdf.median * 1e3:.1f} ms, "
              f"p90 {cdf.quantile(0.9) * 1e3:.1f} ms")
        print(f"  beaconing traffic: {sim.metrics.total_bytes:,} B\n")

    base = results["baseline (AS-path length)"]
    optimized = results["latency-aware (extension)"]
    tail_gain = (base.quantile(0.9) - optimized.quantile(0.9)) / base.quantile(0.9)
    print("takeaway: with the latency channel, beacon selection matches or"
          " beats the baseline's path latency (tail p90 improves by "
          f"{tail_gain:.0%} here) at a fraction of the beaconing traffic —\n"
          "the hop-count baseline floods every shortest path every "
          "interval, the extension maintains the low-latency ones.")


if __name__ == "__main__":
    main()
