#!/usr/bin/env python3
"""CI service benchmark: sustained measurement-service throughput.

Builds a small full-stack network once, then drives the always-on
measurement service (``repro.service``) with concurrent clients over the
*wall* clock — simulated per-request service times are zeroed so the
measurement captures the service's own pipeline overhead (admission,
queueing, worker dispatch, handlers, result logging) rather than
configured sleeps. Appends one entry to ``BENCH_smoke.json`` recording
sustained requests/second and p50/p99 latency, gated by
``tools/check_bench_regression.py``::

    PYTHONPATH=src python tools/bench_service.py [--requests N] [--clients N]
                                                 [--output FILE] [--label TEXT]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import configure_logging, get_reporter  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.slo import (  # noqa: E402
    BENCH_SERVICE_SLOS,
    evaluate_slos,
    slo_summary,
)
from repro.service import (  # noqa: E402
    MeasurementService,
    Request,
    RequestKind,
    ServiceConfig,
    SessionConfig,
    check_invariants,
)
from repro.service.service import SERVICE_LATENCY_BUCKETS  # noqa: E402
from repro.service.session import build_session_network  # noqa: E402

reporter = get_reporter("repro.tools.bench_service")


def host_fingerprint() -> str:
    return f"{platform.machine()}-cpu{os.cpu_count() or 0}"


def plan_requests(endpoints, total: int, clients: int):
    """A deterministic request mix: 70% lookups, 20% traffic, 10% results."""
    plans = [[] for _ in range(clients)]
    pairs = [
        (endpoints[i % len(endpoints)], endpoints[(i + 1) % len(endpoints)])
        for i in range(total)
    ]
    for index in range(total):
        client = f"bench-{index % clients:04d}"
        src, dst = pairs[index]
        slot = index % 10
        if slot < 7:
            request = Request(
                kind=RequestKind.LOOKUP_PATHS, client_id=client,
                src=src, dst=dst,
            )
        elif slot < 9:
            request = Request(
                kind=RequestKind.SUBMIT_TRAFFIC, client_id=client,
                src=src, dst=dst, num_packets=4,
            )
        else:
            request = Request(
                kind=RequestKind.GET_RESULTS, client_id=client, limit=20,
            )
        plans[index % clients].append(request)
    return plans


def bench_slos(service) -> dict:
    """Evaluate :data:`BENCH_SERVICE_SLOS` over the finished run.

    Telemetry stays off during the timed run (its overhead would pollute
    the throughput numbers), so the instruments the SLOs read are rebuilt
    post-hoc from the service's own records: every completion latency
    into the canonical latency histogram, every ``completed_*`` stat into
    the completion counter under its status label.
    """
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram(
        "service.latency_seconds", SERVICE_LATENCY_BUCKETS,
        {"service": service.name},
    )
    for latency in service.latencies:
        histogram.observe(latency)
    for key, value in sorted(service.stats.items()):
        if key.startswith("completed_") and value:
            registry.counter(
                "service.completed",
                {"service": service.name, "status": key[len("completed_"):]},
            ).inc(value)
    return slo_summary(evaluate_slos(registry, BENCH_SERVICE_SLOS))


def run_bench(network, total: int, clients: int) -> dict:
    config = ServiceConfig(
        workers=8,
        queue_depth=max(256, clients * 2),
        rate_per_client=1e9,
        burst_per_client=1e9,
        request_timeout=0.0,          # no timers in the hot loop
        lookup_cost=0.0,              # measure pipeline overhead,
        traffic_cost=0.0,             # not configured sleeps
        fault_cost=0.0,
        results_cost=0.0,
        maintenance_interval=0.0,
        journal=False,                # journaling is for the test harness
    )
    service = MeasurementService(network, config=config)
    plans = plan_requests(
        sorted(network.topology.non_core_asns()), total, clients
    )

    async def client(requests):
        responses = []
        for request in requests:
            responses.append(await service.submit(request))
        return responses

    async def scenario():
        await service.start()
        start = time.perf_counter()
        batches = await asyncio.gather(*(client(p) for p in plans))
        elapsed = time.perf_counter() - start
        await service.drain()
        return batches, elapsed

    batches, elapsed = asyncio.run(scenario())
    responses = [r for batch in batches for r in batch]
    check_invariants(service, responses)

    latencies = sorted(service.latencies)

    def percentile(fraction):
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    completed = service.stats["completed_ok"]
    if completed != total:
        raise AssertionError(
            f"bench expected {total} completions, got {completed} "
            f"(stats: {service.stats})"
        )
    return {
        "slo": bench_slos(service),
        "requests": total,
        "clients": clients,
        "workers": config.workers,
        "wall_seconds": round(elapsed, 4),
        "req_per_second": round(total / elapsed, 1),
        "p50_ms": round(percentile(0.50) * 1e3, 3),
        "p99_ms": round(percentile(0.99) * 1e3, 3),
    }


def append_trajectory(output: Path, entry: dict) -> None:
    history = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=4000,
        help="total requests to push through the service (default: 4000)",
    )
    parser.add_argument(
        "--clients", type=int, default=64,
        help="concurrent client tasks (default: 64)",
    )
    parser.add_argument(
        "--scale", default="mini",
        help="network scale preset (default: mini)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats; the best run is recorded (default: 3)",
    )
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_smoke.json"),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--label", default="", help="free-form tag stored with the entry"
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    reporter.info(
        f"service bench: scale={args.scale} requests={args.requests} "
        f"clients={args.clients} repeats={args.repeats}"
    )
    network = build_session_network(SessionConfig(scale=args.scale))
    best = None
    for _ in range(args.repeats):
        result = run_bench(network, args.requests, args.clients)
        if best is None or result["req_per_second"] > best["req_per_second"]:
            best = result
        reporter.info(
            f"  {result['req_per_second']:.0f} req/s  "
            f"p50 {result['p50_ms']:.2f} ms  p99 {result['p99_ms']:.2f} ms"
        )

    slo = best.pop("slo")
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": args.label,
        "scale": args.scale,
        "machine": host_fingerprint(),
        "python": platform.python_version(),
        "telemetry": False,
        "service": best,
        "slo": slo,
    }
    append_trajectory(Path(args.output), entry)
    verdict = "compliant" if slo["compliant"] else "VIOLATED"
    reporter.info(
        f"best {best['req_per_second']:.0f} req/s (SLOs {verdict}) -> "
        f"appended to {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
