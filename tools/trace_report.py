#!/usr/bin/env python3
"""Convert a recorded trace JSONL stream into Chrome trace-event JSON.

Reads the ``--trace-out`` output of ``python -m repro.experiments`` (one
JSON record per line — causal spans and/or raw trace events), prints a
per-category span/duration summary, and — with ``--output`` — writes a
JSON document loadable in ``chrome://tracing`` or
https://ui.perfetto.dev. Causal spans get one pid lane per worker so
stitched multi-process traces render as separate tracks::

    PYTHONPATH=src python tools/trace_report.py trace.jsonl --output trace.json
    PYTHONPATH=src python tools/trace_report.py trace.jsonl --critical-path 3
    PYTHONPATH=src python tools/trace_report.py trace.jsonl --trace <trace_id>
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import (  # noqa: E402
    category_summary,
    chrome_trace,
    configure_logging,
    format_category_summary,
    get_reporter,
)
from repro.obs.context import (  # noqa: E402
    build_span_trees,
    causal_to_chrome,
    format_span_tree,
    slowest_traces,
    span_problems,
    trace_breakdown,
)

reporter = get_reporter("repro.tools.trace_report")


def load_records(path: Path) -> list:
    """Parse one JSON record per line, skipping blanks."""
    records = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not a JSON trace record ({exc})"
                )
    return records


def split_records(records: list) -> tuple:
    """Separate causal spans from raw trace events by shape: a causal
    span carries ``trace``/``span`` ids, an event carries ``ph``."""
    spans, events = [], []
    for record in records:
        if "trace" in record and "span" in record:
            spans.append(record)
        else:
            events.append(record)
    return spans, events


def render_critical_paths(spans: list, top: int) -> list:
    """Span trees + per-leg breakdowns of the ``top`` slowest traces."""
    lines = []
    for root in slowest_traces(spans, top=top):
        span = root["span"]
        total = span["t1"] - span["t0"]
        lines.append(
            f"trace {span['trace']}  {span['cat']}/{span['name']}  "
            f"{total:.6f}s"
        )
        legs = trace_breakdown(root)
        for name in sorted(legs, key=lambda n: -legs[n]):
            share = legs[name] / total if total else 0.0
            lines.append(f"    {name:24s} {legs[name]:12.6f}s  {share:6.1%}")
        lines.extend(format_span_tree(root, indent=1))
        lines.append("")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL file (from --trace-out)")
    parser.add_argument(
        "--output",
        default=None,
        help="write Chrome trace-event JSON here (chrome://tracing)",
    )
    parser.add_argument(
        "--trace-id",
        "--trace",
        dest="trace_id",
        default=None,
        help="restrict causal spans to one trace id",
    )
    parser.add_argument(
        "--critical-path",
        type=int,
        default=0,
        metavar="N",
        help="show span trees + per-leg breakdowns of the N slowest traces",
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    records = load_records(Path(args.trace))
    spans, events = split_records(records)
    if args.trace_id:
        spans = [s for s in spans if s["trace"] == args.trace_id]
        if not spans:
            raise SystemExit(f"no spans with trace id {args.trace_id!r}")
    reporter.info(
        f"{len(spans)} causal spans "
        f"({len(build_span_trees(spans))} traces) + "
        f"{len(events)} trace events in {args.trace}"
    )
    problems = span_problems(spans)
    for problem in problems[:10]:
        reporter.warning(f"malformed: {problem}")
    summary = category_summary(events)
    if summary:
        reporter.info(format_category_summary(summary))
    if args.critical_path:
        for line in render_critical_paths(spans, args.critical_path):
            reporter.info(line)
    if args.output:
        # Causal spans take the low pid lanes (one per worker); raw
        # events shift above them so the tracks never interleave.
        causal_events = causal_to_chrome(spans)
        lanes = 1 + max((e["pid"] for e in causal_events), default=-1)
        shifted = []
        for event in events:
            out = dict(event)
            out["pid"] = int(out.get("pid", 0)) + lanes
            shifted.append(out)
        document = chrome_trace(causal_events + shifted)
        Path(args.output).write_text(
            json.dumps(document, sort_keys=True) + "\n"
        )
        reporter.info(
            f"chrome trace ({len(document['traceEvents'])} events) -> "
            f"{args.output}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
