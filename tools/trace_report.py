#!/usr/bin/env python3
"""Convert a recorded trace JSONL stream into Chrome trace-event JSON.

Reads the ``--trace-out`` output of ``python -m repro.experiments`` (one
JSON event per line), prints a per-category span/duration summary, and —
with ``--output`` — writes a JSON document loadable in ``chrome://tracing``
or https://ui.perfetto.dev::

    PYTHONPATH=src python tools/trace_report.py trace.jsonl --output trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import (  # noqa: E402
    category_summary,
    chrome_trace,
    configure_logging,
    format_category_summary,
    get_reporter,
)

reporter = get_reporter("repro.tools.trace_report")


def load_events(path: Path) -> list:
    """Parse one trace event per line, skipping blanks."""
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not a JSON trace event ({exc})"
                )
    return events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSONL file (from --trace-out)")
    parser.add_argument(
        "--output",
        default=None,
        help="write Chrome trace-event JSON here (chrome://tracing)",
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    events = load_events(Path(args.trace))
    summary = category_summary(events)
    reporter.info(f"{len(events)} events in {args.trace}")
    if summary:
        reporter.info(format_category_summary(summary))
    if args.output:
        document = chrome_trace(events)
        Path(args.output).write_text(
            json.dumps(document, sort_keys=True) + "\n"
        )
        reporter.info(
            f"chrome trace ({len(document['traceEvents'])} events) -> "
            f"{args.output}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
