#!/usr/bin/env python3
"""Post-mortem reporting over the observability artifacts of a run.

Subcommands, each reading the files a run wrote:

``tree``
    Span trees and critical-path breakdowns of the slowest traces in a
    causal trace stream (``--trace-out``), plus a well-formedness check
    (every parent present, no cycles, child intervals nested).

``slo``
    The compliance table of an SLO summary (``--slo-out``).

``diff``
    What changed between two metrics snapshots (``--metrics-out``):
    counter deltas, gauge movements, histogram count/quantile shifts.

Examples::

    PYTHONPATH=src python tools/obs_report.py tree trace.jsonl --top 3
    PYTHONPATH=src python tools/obs_report.py slo slo.json
    PYTHONPATH=src python tools/obs_report.py diff before.json after.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import configure_logging, get_reporter  # noqa: E402
from repro.obs.context import (  # noqa: E402
    build_span_trees,
    format_span_tree,
    slowest_traces,
    span_problems,
    trace_breakdown,
)

reporter = get_reporter("repro.tools.obs_report")


def load_json(path: str):
    try:
        return json.loads(Path(path).read_text())
    except ValueError as exc:
        raise SystemExit(f"{path}: not JSON ({exc})")
    except OSError as exc:
        raise SystemExit(f"{path}: {exc}")


def load_spans(path: str) -> list:
    """Causal spans from a ``--trace-out`` JSONL stream (raw trace
    events on the same stream are skipped by shape)."""
    spans = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise SystemExit(f"{path}:{lineno}: not JSON ({exc})")
            if "trace" in record and "span" in record:
                spans.append(record)
    return spans


# ----------------------------------------------------------------- tree


def cmd_tree(args) -> int:
    spans = load_spans(args.trace)
    if args.trace_id:
        spans = [s for s in spans if s["trace"] == args.trace_id]
    if not spans:
        raise SystemExit("no causal spans in the stream")
    trees = build_span_trees(spans)
    reporter.info(f"{len(spans)} spans across {len(trees)} traces")
    problems = span_problems(spans)
    if problems:
        for problem in problems[:20]:
            reporter.warning(f"malformed: {problem}")
    else:
        reporter.info("well-formed: parents present, acyclic, nested")
    reporter.info("")
    for root in slowest_traces(spans, top=args.top):
        span = root["span"]
        total = span["t1"] - span["t0"]
        reporter.info(
            f"trace {span['trace']}  {span['cat']}/{span['name']}  "
            f"{total:.6f}s"
        )
        legs = trace_breakdown(root)
        for name in sorted(legs, key=lambda n: -legs[n]):
            share = legs[name] / total if total else 0.0
            reporter.info(
                f"    {name:24s} {legs[name]:12.6f}s  {share:6.1%}"
            )
        for line in format_span_tree(root, indent=1):
            reporter.info(line)
        reporter.info("")
    return 0


# ------------------------------------------------------------------ slo


def cmd_slo(args) -> int:
    summary = load_json(args.summary)
    objectives = summary.get("objectives", [])
    if not objectives:
        raise SystemExit(f"{args.summary}: no objectives in summary")
    verdict = "OK" if summary.get("compliant") else "VIOLATED"
    reporter.info(f"SLO compliance ({verdict}):")
    for entry in objectives:
        target = (
            f"<= {entry['threshold']}s"
            if entry["kind"] == "latency"
            else "errors ok"
        )
        burn = entry.get("budget", {}).get("burn", 0.0)
        state = "OK" if entry.get("compliant") else "VIOLATED"
        notes = entry.get("notes")
        note = f" [{','.join(notes)}]" if notes else ""
        reporter.info(
            f"  {entry['name']:<24} {target:<12} attained "
            f"{entry['attained']:>8.4%} / objective "
            f"{entry['objective']:.2%}  budget burn {burn:.2f}  "
            f"{state}{note}"
        )
    return 0 if summary.get("compliant") else 1


# ----------------------------------------------------------------- diff


def _keyed(entries):
    return {
        (e["name"], tuple(sorted(e["labels"].items()))): e for e in entries
    }


def _label_str(key) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def cmd_diff(args) -> int:
    old = load_json(args.old)
    new = load_json(args.new)
    changes = 0
    for section in ("counters", "gauges"):
        before = _keyed(old.get(section, ()))
        after = _keyed(new.get(section, ()))
        for key in sorted(set(before) | set(after)):
            v0 = before.get(key, {}).get("value", 0.0)
            v1 = after.get(key, {}).get("value", 0.0)
            if v0 == v1:
                continue
            changes += 1
            reporter.info(
                f"  {section[:-1]:<9} {_label_str(key):<56} "
                f"{v0:>14g} -> {v1:<14g} ({v1 - v0:+g})"
            )
    before = _keyed(old.get("histograms", ()))
    after = _keyed(new.get("histograms", ()))
    for key in sorted(set(before) | set(after)):
        h0 = before.get(key, {})
        h1 = after.get(key, {})
        if h0.get("count", 0) == h1.get("count", 0) and h0.get(
            "quantiles"
        ) == h1.get("quantiles"):
            continue
        changes += 1
        q0 = h0.get("quantiles", {})
        q1 = h1.get("quantiles", {})
        reporter.info(
            f"  histogram {_label_str(key):<56} count "
            f"{h0.get('count', 0)} -> {h1.get('count', 0)}  "
            f"p99 {q0.get('p99', 0.0):g} -> {q1.get('p99', 0.0):g}"
        )
    reporter.info(f"{changes} instrument(s) changed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log-level", default="info")
    sub = parser.add_subparsers(dest="command", required=True)

    tree = sub.add_parser("tree", help="span trees + critical paths")
    tree.add_argument("trace", help="trace JSONL file (from --trace-out)")
    tree.add_argument(
        "--top", type=int, default=5,
        help="how many of the slowest traces to expand (default: 5)",
    )
    tree.add_argument(
        "--trace-id", default=None, help="restrict to one trace id"
    )
    tree.set_defaults(func=cmd_tree)

    slo = sub.add_parser("slo", help="SLO compliance table")
    slo.add_argument("summary", help="SLO summary JSON (from --slo-out)")
    slo.set_defaults(func=cmd_slo)

    diff = sub.add_parser("diff", help="metrics snapshot diff")
    diff.add_argument("old", help="baseline metrics snapshot JSON")
    diff.add_argument("new", help="comparison metrics snapshot JSON")
    diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
