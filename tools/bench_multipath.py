#!/usr/bin/env python3
"""CI multipath benchmark: scheduler throughput + dataset-export rate.

Three timed sections, appended as one ``multipath`` entry to
``BENCH_smoke.json`` and gated by ``tools/check_bench_regression.py``:

* **scheduler** — per-flow splits/second of the weighted-ECMP strategy
  over seeded synthetic candidate universes (the per-flow hot path the
  traffic engine pays when multipath is enabled);
* **churn** — intervals/second of a full churn horizon (beacon expiry,
  fault schedule, re-selection, real kernel-backend forwarding) over a
  small full-stack network;
* **dataset** — rows/second of the JSONL/CSV/manifest export, validated
  after writing (a bench run that exports a corrupt dataset must fail
  loudly, not record a fast number).

Usage::

    PYTHONPATH=src python tools/bench_multipath.py [--intervals N]
                          [--backend python|numpy] [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.control.network import ScionNetwork  # noqa: E402
from repro.experiments.common import build_full_stack_topology  # noqa: E402
from repro.experiments.config import TEST_SCALE  # noqa: E402
from repro.multipath.axioms import synthetic_universe  # noqa: E402
from repro.multipath.churn import ChurnConfig, ChurnDriver  # noqa: E402
from repro.multipath.dataset import (  # noqa: E402
    validate_dataset,
    write_dataset,
)
from repro.multipath.scheduler import get_strategy  # noqa: E402
from repro.obs import configure_logging, get_reporter  # noqa: E402

reporter = get_reporter("repro.tools.bench_multipath")


def host_fingerprint() -> str:
    return f"{platform.machine()}-cpu{os.cpu_count() or 0}"


def bench_scheduler(num_splits: int) -> dict:
    """Splits/second of weighted-ECMP over rotating synthetic universes."""
    universes = [synthetic_universe(seed) for seed in range(8)]
    strategy = get_strategy("weighted-ecmp")
    start = time.perf_counter()
    packets = 0
    for flow_key in range(num_splits):
        candidates, ctx = universes[flow_key % len(universes)]
        split = strategy.split(flow_key, 12, candidates, 3, ctx)
        packets += sum(a.packets for a in split.assignments)
    elapsed = time.perf_counter() - start
    if packets != num_splits * 12:
        raise AssertionError(
            f"scheduler conservation broke: {packets} != {num_splits * 12}"
        )
    return {
        "splits": num_splits,
        "splits_per_second": round(num_splits / elapsed, 1),
    }


def bench_churn(intervals: int, backend: str) -> tuple:
    """Intervals/second of a full churn horizon; returns (record, result)."""
    topology = build_full_stack_topology(TEST_SCALE, leaves_per_core=2)
    network = ScionNetwork(
        topology,
        algorithm="diversity",
        core_config=TEST_SCALE.core_beaconing_config(5),
        intra_config=TEST_SCALE.intra_isd_config(5),
        backend=backend,
    ).run()
    config = ChurnConfig(num_intervals=intervals, num_pairs=4, seed=7)
    driver = ChurnDriver(network, config, name="bench", backend=backend)
    start = time.perf_counter()
    result = driver.run()
    elapsed = time.perf_counter() - start
    if not result.reconciles():
        raise AssertionError("churn accounting does not reconcile")
    return (
        {
            "intervals": intervals,
            "pairs": len(result.pairs),
            "packets_delivered": result.packets_delivered,
            "intervals_per_second": round(intervals / elapsed, 1),
        },
        result,
    )


def bench_dataset(result) -> dict:
    """Rows/second of the full export, validated after writing."""
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        manifest = write_dataset(result, tmp)
        elapsed = time.perf_counter() - start
        validate_dataset(tmp)
    rows = manifest["files"]["series.jsonl"]["rows"]
    return {
        "rows": rows,
        "rows_per_second": round(rows / elapsed, 1),
        "dataset_id": manifest["dataset_id"],
    }


def append_trajectory(output: Path, entry: dict) -> None:
    history = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--splits", type=int, default=20000,
        help="scheduler splits to time (default: 20000)",
    )
    parser.add_argument(
        "--intervals", type=int, default=300,
        help="churn intervals to time (default: 300)",
    )
    parser.add_argument(
        "--backend", default="python", choices=("python", "numpy"),
        help="kernel backend for the churn horizon (default: python)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="measurement repeats; the best run is recorded (default: 3)",
    )
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_smoke.json"),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--label", default="", help="free-form tag stored with the entry"
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    reporter.info(
        f"multipath bench: splits={args.splits} intervals={args.intervals} "
        f"backend={args.backend} repeats={args.repeats}"
    )
    best_sched = best_churn = best_data = None
    for _ in range(args.repeats):
        sched = bench_scheduler(args.splits)
        churn, result = bench_churn(args.intervals, args.backend)
        data = bench_dataset(result)
        if (
            best_sched is None
            or sched["splits_per_second"] > best_sched["splits_per_second"]
        ):
            best_sched = sched
        if (
            best_churn is None
            or churn["intervals_per_second"]
            > best_churn["intervals_per_second"]
        ):
            best_churn = churn
        if (
            best_data is None
            or data["rows_per_second"] > best_data["rows_per_second"]
        ):
            best_data = data
        reporter.info(
            f"  {sched['splits_per_second']:.0f} splits/s  "
            f"{churn['intervals_per_second']:.0f} intervals/s  "
            f"{data['rows_per_second']:.0f} rows/s"
        )

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": args.label,
        "machine": host_fingerprint(),
        "cores": os.cpu_count() or 0,
        "python": platform.python_version(),
        "backend": args.backend,
        "telemetry": False,
        "multipath": {
            "scheduler": best_sched,
            "churn": best_churn,
            "dataset": best_data,
        },
    }
    append_trajectory(Path(args.output), entry)
    reporter.info(
        f"best {best_sched['splits_per_second']:.0f} splits/s, "
        f"{best_churn['intervals_per_second']:.0f} intervals/s, "
        f"{best_data['rows_per_second']:.0f} rows/s -> "
        f"appended to {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
