#!/usr/bin/env python3
"""Shard-scaling benchmark: beaconing wall time at 1/2/4 shards.

Runs one core-beaconing workload through the single-process
:class:`~repro.simulation.beaconing.BeaconingSimulation` and through the
sharded kernel (:mod:`repro.shard`) at increasing shard counts, asserts
the determinism contract (identical interface statistics at every shard
count), and appends one ``shard_scaling`` entry to the
``BENCH_smoke.json`` trajectory::

    PYTHONPATH=src python tools/bench_shard.py [--ases N] [--intervals N]
                                               [--shards 1,2,4]
                                               [--output FILE] [--label TEXT]

``tools/check_bench_regression.py`` gates the recorded 4-shard speedup in
CI; the entry carries the host's effective core count so the gate can
skip on machines with fewer cores than shards (process-per-shard cannot
beat serial on one core).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import configure_logging, get_reporter  # noqa: E402
from repro.shard import ShardedBeaconing, partition_topology  # noqa: E402
from repro.simulation.beaconing import (  # noqa: E402
    BeaconingConfig,
    BeaconingSimulation,
    diversity_factory,
)
from repro.topology import assign_isds, generate_core_mesh  # noqa: E402

reporter = get_reporter("repro.tools.bench_shard")


def host_fingerprint() -> str:
    """Same coarse hardware tag as ``bench_smoke.py`` — entries from
    different machines are never compared against each other."""
    return f"{platform.machine()}-cpu{os.cpu_count() or 0}"


def build_workload(num_ases: int, num_isds: int, seed: int):
    """A connected core mesh tagged with ISDs, so the partitioner runs
    its ISD-atomic strategy exactly as it would on the paper topologies."""
    topology = generate_core_mesh(num_ases, mean_degree=4.0, seed=seed)
    assign_isds(topology, num_isds)
    return topology


def run_once(topology, config: BeaconingConfig, shards: int) -> dict:
    """One timed run; returns wall seconds plus the determinism digest."""
    factory = diversity_factory(5)
    start = time.perf_counter()
    if shards == 1:
        sim = BeaconingSimulation(topology, factory, config)
        sim.run()
        wall = time.perf_counter() - start
        digest = sim.metrics.interfaces()
    else:
        plan = partition_topology(topology, shards)
        sim = ShardedBeaconing(
            topology, factory, config, plan=plan, processes=True
        )
        try:
            sim.run()
            wall = time.perf_counter() - start
            digest = sim.metrics.interfaces()
        finally:
            sim.close()
    return {
        "wall_seconds": wall,
        "digest": digest,
        "total_pcbs": sim.metrics.total_pcbs,
    }


def run_scaling(
    topology, config: BeaconingConfig, shard_counts: list
) -> dict:
    timings = {}
    reference_digest = None
    total_pcbs = 0
    for shards in shard_counts:
        result = run_once(topology, config, shards)
        if reference_digest is None:
            reference_digest = result["digest"]
            total_pcbs = result["total_pcbs"]
        elif result["digest"] != reference_digest:
            raise SystemExit(
                f"determinism contract violated at {shards} shards: "
                f"interface statistics differ from the 1-shard run"
            )
        timings[str(shards)] = round(result["wall_seconds"], 3)
        reporter.info(
            f"  shards={shards}: {result['wall_seconds']:.2f}s "
            f"({result['total_pcbs']} PCBs)"
        )
    base = timings[str(shard_counts[0])]
    speedups = {
        count: round(base / seconds, 3) if seconds > 0 else 0.0
        for count, seconds in timings.items()
        if count != str(shard_counts[0])
    }
    return {
        "ases": topology.num_ases,
        "links": topology.num_links,
        "intervals": config.num_intervals,
        "total_pcbs": total_pcbs,
        "timings": timings,
        "speedups": speedups,
    }


def append_trajectory(output: Path, entry: dict) -> None:
    history = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ases", type=int, default=48)
    parser.add_argument(
        "--isds", type=int, default=4,
        help="ISD count of the generated mesh (partitioner granularity)",
    )
    parser.add_argument("--intervals", type=int, default=24)
    parser.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts; first is the reference",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_smoke.json"),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--label", default="", help="free-form tag stored with the entry"
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    shard_counts = [int(part) for part in args.shards.split(",") if part]
    if not shard_counts or any(count < 1 for count in shard_counts):
        raise SystemExit(f"invalid --shards {args.shards!r}")

    cores = os.cpu_count() or 1
    reporter.info(
        f"shard scaling: {args.ases} ASes / {args.isds} ISDs, "
        f"{args.intervals} intervals, shards {shard_counts} "
        f"({cores} cores)"
    )
    topology = build_workload(args.ases, args.isds, args.seed)
    config = BeaconingConfig(
        interval=600.0,
        duration=args.intervals * 600.0,
        pcb_lifetime=args.intervals * 600.0,
        storage_limit=40,
    )
    started = time.time()
    scaling = run_scaling(topology, config, shard_counts)
    entry = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)
        ),
        "label": args.label,
        "machine": host_fingerprint(),
        "cores": cores,
        "python": platform.python_version(),
        "shard_scaling": scaling,
    }
    append_trajectory(Path(args.output), entry)
    for count, speedup in sorted(scaling["speedups"].items()):
        reporter.info(f"  speedup at {count} shards: {speedup:.2f}x")
    reporter.info(f"appended shard_scaling entry to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
