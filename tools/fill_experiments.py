#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from a bench_output.txt run.

Maintainer utility: after `pytest benchmarks/ --benchmark-only -q -s >
bench_output.txt`, this script extracts the measured numbers (Figure 5
medians, Figure 6 fractions, SCIONLab percentages) and substitutes the
FILL_* markers in EXPERIMENTS.md. Idempotent only on a file that still has
markers; keep the markers in version control templates.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import get_reporter  # noqa: E402

reporter = get_reporter("repro.tools.fill_experiments")


def extract(text: str) -> dict:
    values = {}

    def med(name):
        match = re.search(
            rf"median {re.escape(name)}: ([0-9.e+]+)x \(([+-][0-9.]+) orders",
            text,
        )
        return f"{match.group(1)}x ({match.group(2)} orders)" if match else None

    values["FILL_BGPSEC"] = med("bgpsec")
    values["FILL_BASE"] = med("scion-core-baseline")
    values["FILL_DIV"] = med("scion-core-diversity")
    values["FILL_INTRA"] = med("scion-intra-isd-baseline")
    gain = re.search(
        r"diversity vs baseline core beaconing: ([0-9.]+)x", text
    )
    values["FILL_GAIN"] = f"{gain.group(1)}x" if gain else None

    # Figure 6b capacity fractions live after the 6b heading; anchor there
    # so the Figure 6a "pairs with <= 15 failing links" block is skipped.
    start = text.find("Figure 6b (scale=")
    capacity_block = text[start : start + 1200] if start >= 0 else ""

    def fraction(series):
        match = re.search(
            rf"^    {re.escape(series)}\s+([0-9.]+)%",
            capacity_block,
            re.MULTILINE,
        )
        return f"{match.group(1)}%" if match else None

    values["FILL_6_BGP"] = fraction("bgp")
    values["FILL_6_BASE"] = fraction("baseline(60)")
    values["FILL_6_15"] = fraction("diversity(15)")
    values["FILL_6_30"] = fraction("diversity(30)")
    values["FILL_6_60"] = fraction("diversity(60)")
    values["FILL_6_INF"] = fraction("diversity(inf)")

    capped = re.findall(
        r"fraction of storage-capped optimum.*?diversity\(15\)\s+([0-9.]+)%"
        r".*?diversity\(30\)\s+([0-9.]+)%.*?diversity\(60\)\s+([0-9.]+)%",
        text,
        re.DOTALL,
    )
    if capped:
        values["FILL_CAPPED"] = "/".join(f"{v}%" for v in capped[0])

    improved = re.findall(
        r"diversity\((?:5|10|15|60)\)\s+([0-9.]+)%",
        text[text.find("pairs improved over measurement"):][:400],
    )
    if len(improved) >= 4:
        values["FILL_78"] = "/".join(f"{v}%" for v in improved[:4])

    median_bw = re.search(r"median ([0-9]+) Bps", text)
    if median_bw:
        values["FILL_9"] = median_bw.group(1)

    # Resilience factor baseline/BGP from the Figure 6a table's mean column.
    def table_mean(series):
        match = re.search(
            rf"^{re.escape(series)}\s*\|(?:[^|]*\|)*([0-9.]+)\s*$",
            text,
            re.MULTILINE,
        )
        return float(match.group(1)) if match else None

    bgp_mean = table_mean("bgp")
    base_mean = table_mean("baseline(60)")
    if bgp_mean and base_mean:
        values["FILL_DOUBLE"] = f"{base_mean / bgp_mean:.1f}x (mean resilience)"
    else:
        values.setdefault("FILL_DOUBLE", None)
    return values


def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text()
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    for marker, value in extract(bench).items():
        if value is None:
            reporter.warning(f"warning: no value extracted for {marker}")
            continue
        text = text.replace(marker, value)
    experiments.write_text(text)
    remaining = re.findall(r"FILL_[A-Z0-9_]+", text)
    if remaining:
        reporter.info(f"unfilled markers: {sorted(set(remaining))}")
    else:
        reporter.info("all markers filled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
