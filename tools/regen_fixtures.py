#!/usr/bin/env python
"""Regenerate the golden-regression fixtures under ``tests/fixtures/``.

Usage (from the repository root)::

    PYTHONPATH=src python tools/regen_fixtures.py

The fixtures pin the *numeric outputs* of the figure 5 and figure 6
pipelines at the deterministic ``test`` scale. Run this only when an
intentional behavior change shifts the numbers; commit the regenerated
files together with the change that explains them. The diff test
(``tests/test_golden_regression.py``) prints this command when it fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import TEST_SCALE  # noqa: E402
from repro.experiments.figure5 import run_figure5  # noqa: E402
from repro.experiments.figure6 import run_figure6  # noqa: E402
from repro.experiments.multipath import run_multipath  # noqa: E402
from repro.experiments.traffic import run_traffic  # noqa: E402
from repro.obs import get_reporter  # noqa: E402
from repro.scenario import (  # noqa: E402
    build_family,
    compile_scenario,
    family_names,
)

reporter = get_reporter("repro.tools.regen_fixtures")

FIXTURES = REPO_ROOT / "tests" / "fixtures"

#: The reduced traffic workload the fixture (and its diff test) pins:
#: one policy, both algorithms, faulted runs included.
TRAFFIC_POLICIES = ("shortest-latency",)


def figure5_fixture() -> dict:
    result = run_figure5(TEST_SCALE)
    return {
        "scale": result.scale_name,
        # JSON keys are strings; the diff test normalizes the same way.
        "monthly_bytes": {
            series: {str(asn): value for asn, value in sorted(per.items())}
            for series, per in sorted(result.comparison.monthly_bytes.items())
        },
    }


def figure6_fixture() -> dict:
    result = run_figure6(TEST_SCALE)
    return {
        "scale": result.scale_name,
        "pairs": [list(pair) for pair in result.pairs],
        "values": {
            series: list(values)
            for series, values in sorted(result.values.items())
        },
    }


def traffic_fixture() -> dict:
    result = run_traffic(TEST_SCALE, policies=TRAFFIC_POLICIES)
    series = {}
    for name, run in sorted(result.results.items()):
        series[name] = {
            "delivered_bytes": list(run.delivered_bytes),
            "lost_bytes": list(run.lost_bytes),
            "flows_completed": run.flows_completed,
            "flows_failed": run.flows_failed,
            "packets_forwarded": run.packets_forwarded,
            "packets_lost": run.packets_lost,
            "macs_verified": run.macs_verified,
            "cache_hits": run.cache_hits,
            "cache_misses": run.cache_misses,
            "scmp_events": run.scmp_events,
            "sig_encapsulated": run.sig_encapsulated,
            "sig_decapsulated": run.sig_decapsulated,
            "failed_links": list(run.failed_links),
            "total_link_bytes": sum(run.link_bytes.values()),
            # Float pipeline: summed, compared with approx in the test.
            "latency_sum": sum(run.flow_latencies),
        }
    return {"scale": result.scale_name, "series": series}


def multipath_fixture() -> dict:
    """Churn horizons of every strategy at the test scale.

    Pins the aggregates plus the dataset id — the content address of the
    full per-path time series — so any drift in scheduling, churn
    modeling or export encoding shows up as a one-line diff."""
    import tempfile

    from repro.multipath.dataset import write_dataset
    from repro.multipath.scheduler import STRATEGY_NAMES

    result = run_multipath(
        TEST_SCALE, strategies=STRATEGY_NAMES, k_paths=3
    )
    series = {}
    ordered = []
    for name in STRATEGY_NAMES:
        run = result.results[name]
        ordered.append(run)
        series[name] = {
            "packets_offered": run.packets_offered,
            "packets_delivered": run.packets_delivered,
            "packets_lost": run.packets_lost,
            "macs_verified": run.macs_verified,
            "beacon_expiries": run.beacon_expiries,
            "switch_events": run.switch_events,
            "scmp_events": run.scmp_events,
            "faults_injected": run.faults_injected,
            "num_rows": len(run.rows),
            "num_paths": len(run.paths),
            "pairs": [list(pair) for pair in run.pairs],
            "path_lifetimes": list(run.path_lifetimes),
            # Float pipeline: compared with approx in the test.
            "latency_sum": sum(row[9] for row in run.rows),
        }
    with tempfile.TemporaryDirectory() as tmp:
        manifest = write_dataset(ordered, tmp)
    return {
        "scale": result.scale_name,
        "series": series,
        "dataset_id": manifest["dataset_id"],
        "schema_version": manifest["schema_version"],
    }


def scenarios_fixture() -> dict:
    """Compile manifests of every built-in family at the test scale.

    The manifest is the canonical primitive projection of a compiled
    scenario (topology fingerprint, deployment partition, IXP/leased
    links, hijack roles, schedule hashes, run plan) — pinning it catches
    any drift in the compiler's deterministic lowering without paying for
    full scenario runs.
    """
    families = {}
    for family in family_names():
        families[family] = {
            spec.name: compile_scenario(spec).manifest()
            for spec in build_family(family, "test")
        }
    return {"scale": "test", "families": families}


def write(name: str, payload: dict) -> None:
    path = FIXTURES / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    reporter.info(f"wrote {path}")


def main() -> int:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    write("figure5_test.json", figure5_fixture())
    write("figure6_test.json", figure6_fixture())
    write("traffic_test.json", traffic_fixture())
    write("multipath_test.json", multipath_fixture())
    write("scenarios_test.json", scenarios_fixture())
    return 0


if __name__ == "__main__":
    sys.exit(main())
