#!/usr/bin/env python
"""Regenerate the golden-regression fixtures under ``tests/fixtures/``.

Usage (from the repository root)::

    PYTHONPATH=src python tools/regen_fixtures.py

The fixtures pin the *numeric outputs* of the figure 5 and figure 6
pipelines at the deterministic ``test`` scale. Run this only when an
intentional behavior change shifts the numbers; commit the regenerated
files together with the change that explains them. The diff test
(``tests/test_golden_regression.py``) prints this command when it fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.config import TEST_SCALE  # noqa: E402
from repro.experiments.figure5 import run_figure5  # noqa: E402
from repro.experiments.figure6 import run_figure6  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures"


def figure5_fixture() -> dict:
    result = run_figure5(TEST_SCALE)
    return {
        "scale": result.scale_name,
        # JSON keys are strings; the diff test normalizes the same way.
        "monthly_bytes": {
            series: {str(asn): value for asn, value in sorted(per.items())}
            for series, per in sorted(result.comparison.monthly_bytes.items())
        },
    }


def figure6_fixture() -> dict:
    result = run_figure6(TEST_SCALE)
    return {
        "scale": result.scale_name,
        "pairs": [list(pair) for pair in result.pairs],
        "values": {
            series: list(values)
            for series, values in sorted(result.values.items())
        },
    }


def write(name: str, payload: dict) -> None:
    path = FIXTURES / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main() -> int:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    write("figure5_test.json", figure5_fixture())
    write("figure6_test.json", figure6_fixture())
    return 0


if __name__ == "__main__":
    sys.exit(main())
