#!/usr/bin/env python3
"""Fail CI when forwarding throughput regresses against the trajectory.

Reads a ``BENCH_smoke.json`` trajectory (as appended by
``tools/bench_smoke.py``), takes the latest telemetry-off entry with a
forwarding-throughput record, and compares its ``packets_per_second``
against the best prior telemetry-off entry from the *same host
fingerprint* (``machine`` field). Entries from other machines are never
compared — CI runners and laptops are different hardware.

Exit status: 1 when throughput dropped more than ``--threshold`` (default
10%) below the baseline; 0 otherwise, including when there is no prior
same-machine baseline yet (the first run on a runner just records one)::

    python tools/check_bench_regression.py BENCH_smoke.json [--threshold 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import configure_logging, get_reporter  # noqa: E402

reporter = get_reporter("repro.tools.check_bench_regression")


def throughput(entry: dict) -> float | None:
    forwarding = entry.get("experiments", {}).get("traffic", {}).get(
        "forwarding", {}
    )
    value = forwarding.get("packets_per_second")
    return float(value) if value else None


def comparable(entry: dict) -> bool:
    """Only telemetry-off runs gate: enabled telemetry pays measured,
    intentional overhead and must not trip the regression check."""
    return not entry.get("telemetry", False) and throughput(entry) is not None


def check(history: list, threshold: float) -> int:
    candidates = [e for e in history if comparable(e)]
    if not candidates:
        reporter.info("no telemetry-off forwarding entries; nothing to check")
        return 0
    latest = candidates[-1]
    machine = latest.get("machine", "")
    latest_pps = throughput(latest)
    baseline = [
        throughput(e)
        for e in candidates[:-1]
        if e.get("machine", "") == machine
    ]
    if not baseline:
        reporter.info(
            f"no prior baseline for machine {machine or '?'!s}; "
            f"recording {latest_pps:.1f} packets/s as the first entry"
        )
        return 0
    best = max(baseline)
    floor = best * (1.0 - threshold)
    verdict = "OK" if latest_pps >= floor else "REGRESSION"
    reporter.info(
        f"forwarding throughput: {latest_pps:.1f} packets/s vs baseline "
        f"{best:.1f} (floor {floor:.1f}, threshold {threshold:.0%}) "
        f"on {machine}: {verdict}"
    )
    return 0 if latest_pps >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectory", help="BENCH_smoke.json path")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional drop vs the best prior entry",
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    path = Path(args.trajectory)
    if not path.exists():
        reporter.info(f"{path} does not exist; nothing to check")
        return 0
    try:
        history = json.loads(path.read_text())
    except ValueError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if not isinstance(history, list):
        history = [history]
    return check(history, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
