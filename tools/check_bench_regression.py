#!/usr/bin/env python3
"""Fail CI when forwarding throughput regresses against the trajectory.

Reads a ``BENCH_smoke.json`` trajectory (as appended by
``tools/bench_smoke.py``), takes the latest telemetry-off entry with a
forwarding-throughput record, and compares its ``packets_per_second``
against the best prior telemetry-off entry from the *same host
fingerprint* (``machine`` field). Entries from other machines are never
compared — CI runners and laptops are different hardware.

Also gates shard-scaling entries (as appended by ``tools/bench_shard.py``):
the latest ``shard_scaling`` entry must show at least ``--shard-speedup``
(default 1.8x) at 4 shards — skipped when the recording host had fewer
than 4 cores, where process-per-shard cannot beat serial.

And gates the kernel-backend microbenchmarks (``kernels`` section of a
smoke entry): the numpy backend must beat the python reference on
forwarding throughput by at least ``--kernel-speedup`` (default 3x) —
skipped when the recording install had no numpy backend.

And gates measurement-service throughput entries (as appended by
``tools/bench_service.py``): the latest ``service`` entry's sustained
``req_per_second`` must stay within ``--threshold`` of the best prior
same-machine, same-shape (requests/clients/workers) entry.

And gates the service bench's SLO summary (``slo`` section of a service
entry): the latest entry carrying one must be compliant — an absolute
gate, since the bench objectives already encode the failure budget.

And gates scenario-compiler entries (``scenario_compile`` section of a
smoke entry): variants compiled per second over the built-in families
must stay within ``--threshold`` of the best prior same-machine,
same-variant-count entry.

And gates multipath entries (as appended by ``tools/bench_multipath.py``):
scheduler splits/second and dataset-export rows/second must each stay
within ``--threshold`` of the best prior same-machine, same-shape
(splits / intervals / backend) entry.

Exit status: 1 when throughput dropped more than ``--threshold`` (default
10%) below the baseline or the shard speedup is under the floor; 0
otherwise, including when there is no prior same-machine baseline yet
(the first run on a runner just records one)::

    python tools/check_bench_regression.py BENCH_smoke.json [--threshold 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import configure_logging, get_reporter  # noqa: E402

reporter = get_reporter("repro.tools.check_bench_regression")


def throughput(entry: dict) -> float | None:
    forwarding = entry.get("experiments", {}).get("traffic", {}).get(
        "forwarding", {}
    )
    value = forwarding.get("packets_per_second")
    return float(value) if value else None


def comparable(entry: dict) -> bool:
    """Only telemetry-off runs gate: enabled telemetry pays measured,
    intentional overhead and must not trip the regression check."""
    return not entry.get("telemetry", False) and throughput(entry) is not None


def check(history: list, threshold: float) -> int:
    candidates = [e for e in history if comparable(e)]
    if not candidates:
        reporter.info("no telemetry-off forwarding entries; nothing to check")
        return 0
    latest = candidates[-1]
    machine = latest.get("machine", "")
    # Entries computed through different kernel backends are different
    # performance regimes; only same-backend entries form a baseline.
    backend = latest.get("backend", "python")
    latest_pps = throughput(latest)
    baseline = [
        throughput(e)
        for e in candidates[:-1]
        if e.get("machine", "") == machine
        and e.get("backend", "python") == backend
    ]
    if not baseline:
        reporter.info(
            f"no prior baseline for machine {machine or '?'!s}; "
            f"recording {latest_pps:.1f} packets/s as the first entry"
        )
        return 0
    best = max(baseline)
    floor = best * (1.0 - threshold)
    verdict = "OK" if latest_pps >= floor else "REGRESSION"
    reporter.info(
        f"forwarding throughput: {latest_pps:.1f} packets/s vs baseline "
        f"{best:.1f} (floor {floor:.1f}, threshold {threshold:.0%}) "
        f"on {machine}: {verdict}"
    )
    return 0 if latest_pps >= floor else 1


def check_shard_scaling(
    history: list, min_speedup: float, min_cores: int = 4
) -> int:
    """Gate the latest ``shard_scaling`` entry (``tools/bench_shard.py``).

    The 4-shard run must reach ``min_speedup`` over the 1-shard reference.
    Hosts with fewer than ``min_cores`` effective cores skip the gate —
    there the sharded run pays process and plane overhead with no
    parallelism to earn it back, and the entry only records the trend.
    """
    candidates = [e for e in history if "shard_scaling" in e]
    if not candidates:
        reporter.info("no shard_scaling entries; nothing to check")
        return 0
    latest = candidates[-1]
    cores = int(latest.get("cores", 0))
    if cores < min_cores:
        reporter.info(
            f"shard scaling recorded on a {cores}-core host (< {min_cores}); "
            f"speedup gate skipped"
        )
        return 0
    speedup = latest["shard_scaling"].get("speedups", {}).get("4")
    if speedup is None:
        reporter.info("latest shard_scaling entry has no 4-shard run; skipped")
        return 0
    verdict = "OK" if speedup >= min_speedup else "REGRESSION"
    reporter.info(
        f"shard scaling: {speedup:.2f}x at 4 shards on {cores} cores "
        f"(floor {min_speedup:.2f}x): {verdict}"
    )
    return 0 if speedup >= min_speedup else 1


def check_kernel_speedup(history: list, min_speedup: float) -> int:
    """Gate the latest ``kernels`` microbench section (``bench_smoke.py``).

    The numpy backend exists to make the forwarding hot loop cheap; on CI
    runners it must beat the pure-Python reference by ``min_speedup`` on
    forwarding packets/sec. Installs without numpy record python-only
    sections and skip the gate.
    """
    candidates = [e for e in history if "kernels" in e]
    if not candidates:
        reporter.info("no kernel microbench entries; nothing to check")
        return 0
    kernels = candidates[-1]["kernels"]
    speedup = kernels.get("forwarding_speedup")
    if speedup is None:
        reporter.info(
            "latest kernels entry has no numpy backend; speedup gate skipped"
        )
        return 0
    verdict = "OK" if speedup >= min_speedup else "REGRESSION"
    reporter.info(
        f"kernel speedup: numpy {speedup:.2f}x python on forwarding "
        f"(floor {min_speedup:.2f}x): {verdict}"
    )
    return 0 if speedup >= min_speedup else 1


def check_service_throughput(history: list, threshold: float) -> int:
    """Gate the latest ``service`` entry (``tools/bench_service.py``).

    Sustained requests/second through the measurement-service pipeline
    must stay within ``threshold`` of the best prior entry recorded on
    the same machine with the same workload shape (requests, clients,
    workers) — entries with different shapes measure different regimes.
    """
    candidates = [
        e for e in history
        if not e.get("telemetry", False)
        and e.get("service", {}).get("req_per_second")
    ]
    if not candidates:
        reporter.info("no service throughput entries; nothing to check")
        return 0
    latest = candidates[-1]
    machine = latest.get("machine", "")
    shape = tuple(
        latest["service"].get(k) for k in ("requests", "clients", "workers")
    )
    latest_rps = float(latest["service"]["req_per_second"])
    baseline = [
        float(e["service"]["req_per_second"])
        for e in candidates[:-1]
        if e.get("machine", "") == machine
        and tuple(
            e["service"].get(k) for k in ("requests", "clients", "workers")
        ) == shape
    ]
    if not baseline:
        reporter.info(
            f"no prior service baseline for machine {machine or '?'!s}; "
            f"recording {latest_rps:.1f} req/s as the first entry"
        )
        return 0
    best = max(baseline)
    floor = best * (1.0 - threshold)
    verdict = "OK" if latest_rps >= floor else "REGRESSION"
    reporter.info(
        f"service throughput: {latest_rps:.1f} req/s vs baseline "
        f"{best:.1f} (floor {floor:.1f}, threshold {threshold:.0%}) "
        f"on {machine}: {verdict}"
    )
    return 0 if latest_rps >= floor else 1


def check_service_slo(history: list) -> int:
    """Gate the latest service-bench SLO summary (``tools/bench_service.py``).

    Unlike the throughput gates this is absolute, not trajectory-relative:
    the bench objectives (``BENCH_SERVICE_SLOS``) already encode the
    tolerated failure budget, so the latest entry carrying an ``slo``
    section simply must be compliant. Entries without one (older
    trajectories) skip the gate.
    """
    candidates = [e for e in history if e.get("slo", {}).get("objectives")]
    if not candidates:
        reporter.info("no service SLO entries; nothing to check")
        return 0
    summary = candidates[-1]["slo"]
    for entry in summary["objectives"]:
        verdict = "OK" if entry.get("compliant") else "VIOLATED"
        reporter.info(
            f"service SLO {entry['name']}: attained "
            f"{entry['attained']:.4%} / objective {entry['objective']:.2%} "
            f"(budget burn {entry['budget']['burn']:.2f}): {verdict}"
        )
    if summary.get("compliant"):
        return 0
    reporter.info("service SLO compliance: VIOLATED")
    return 1


def check_scenario_compile(history: list, threshold: float) -> int:
    """Gate the latest ``scenario_compile`` record (``bench_smoke.py``).

    The scenario compiler's variants/second over the built-in families
    must stay within ``threshold`` of the best prior telemetry-off entry
    recorded on the same machine with the same variant count — a changed
    variant count means the family set itself changed, which resets the
    baseline rather than gating against a different workload.
    """
    candidates = [
        e for e in history
        if not e.get("telemetry", False)
        and e.get("scenario_compile", {}).get("variants_per_second")
    ]
    if not candidates:
        reporter.info("no scenario_compile entries; nothing to check")
        return 0
    latest = candidates[-1]
    machine = latest.get("machine", "")
    variants = latest["scenario_compile"].get("variants")
    latest_vps = float(latest["scenario_compile"]["variants_per_second"])
    baseline = [
        float(e["scenario_compile"]["variants_per_second"])
        for e in candidates[:-1]
        if e.get("machine", "") == machine
        and e["scenario_compile"].get("variants") == variants
    ]
    if not baseline:
        reporter.info(
            f"no prior scenario-compile baseline for machine "
            f"{machine or '?'!s}; recording {latest_vps:.1f} variants/s "
            f"as the first entry"
        )
        return 0
    best = max(baseline)
    floor = best * (1.0 - threshold)
    verdict = "OK" if latest_vps >= floor else "REGRESSION"
    reporter.info(
        f"scenario compile: {latest_vps:.1f} variants/s vs baseline "
        f"{best:.1f} (floor {floor:.1f}, threshold {threshold:.0%}) "
        f"on {machine}: {verdict}"
    )
    return 0 if latest_vps >= floor else 1


def check_multipath(history: list, threshold: float) -> int:
    """Gate the latest ``multipath`` entry (``tools/bench_multipath.py``).

    Two rates gate independently: scheduler splits/second (the per-flow
    hot path the traffic engine pays under multipath) and dataset
    rows/second (the export pipeline). Each must stay within
    ``threshold`` of the best prior telemetry-off entry recorded on the
    same machine with the same workload shape (splits, churn intervals,
    kernel backend) — a changed shape resets the baseline.
    """
    candidates = [
        e for e in history
        if not e.get("telemetry", False)
        and e.get("multipath", {}).get("scheduler", {}).get(
            "splits_per_second"
        )
    ]
    if not candidates:
        reporter.info("no multipath bench entries; nothing to check")
        return 0
    latest = candidates[-1]
    machine = latest.get("machine", "")

    def shape(entry: dict) -> tuple:
        section = entry["multipath"]
        return (
            section["scheduler"].get("splits"),
            section.get("churn", {}).get("intervals"),
            entry.get("backend", "python"),
        )

    def rates(entry: dict) -> tuple:
        section = entry["multipath"]
        return (
            float(section["scheduler"]["splits_per_second"]),
            float(section.get("dataset", {}).get("rows_per_second") or 0.0),
        )

    latest_shape = shape(latest)
    baseline = [
        rates(e)
        for e in candidates[:-1]
        if e.get("machine", "") == machine and shape(e) == latest_shape
    ]
    latest_rates = rates(latest)
    if not baseline:
        reporter.info(
            f"no prior multipath baseline for machine {machine or '?'!s}; "
            f"recording {latest_rates[0]:.1f} splits/s and "
            f"{latest_rates[1]:.1f} rows/s as the first entry"
        )
        return 0
    status = 0
    for label, index in (("scheduler splits", 0), ("dataset rows", 1)):
        best = max(values[index] for values in baseline)
        if best <= 0:
            continue
        floor = best * (1.0 - threshold)
        latest_rate = latest_rates[index]
        verdict = "OK" if latest_rate >= floor else "REGRESSION"
        reporter.info(
            f"multipath {label}: {latest_rate:.1f}/s vs baseline "
            f"{best:.1f} (floor {floor:.1f}, threshold {threshold:.0%}) "
            f"on {machine}: {verdict}"
        )
        if latest_rate < floor:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectory", help="BENCH_smoke.json path")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional drop vs the best prior entry",
    )
    parser.add_argument(
        "--shard-speedup",
        type=float,
        default=1.8,
        help="min 4-shard speedup over 1 shard (hosts with >= 4 cores)",
    )
    parser.add_argument(
        "--kernel-speedup",
        type=float,
        default=3.0,
        help="min numpy-over-python forwarding speedup (numpy installs)",
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)

    path = Path(args.trajectory)
    if not path.exists():
        reporter.info(f"{path} does not exist; nothing to check")
        return 0
    try:
        history = json.loads(path.read_text())
    except ValueError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if not isinstance(history, list):
        history = [history]
    status = check(history, args.threshold)
    shard_status = check_shard_scaling(history, args.shard_speedup)
    kernel_status = check_kernel_speedup(history, args.kernel_speedup)
    service_status = check_service_throughput(history, args.threshold)
    slo_status = check_service_slo(history)
    scenario_status = check_scenario_compile(history, args.threshold)
    multipath_status = check_multipath(history, args.threshold)
    return (
        status
        or shard_status
        or kernel_status
        or service_status
        or slo_status
        or scenario_status
        or multipath_status
    )


if __name__ == "__main__":
    sys.exit(main())
