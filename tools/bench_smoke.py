#!/usr/bin/env python3
"""CI smoke benchmark: every figure at TEST scale through the parallel runtime.

Runs table1, figure5, figure6 and the scionlab trio (Figures 7-9) at the
``test`` scale via :class:`repro.runtime.ExperimentRuntime`, then appends
one perf-trajectory entry to ``BENCH_smoke.json`` (a JSON list; one entry
per invocation) with wall time, per-phase timings, and cache hit/miss
counts per experiment. Intended as a fast CI gate that exercises the
process-pool fan-out and the warm-state cache end to end::

    PYTHONPATH=src python tools/bench_smoke.py [--jobs N] [--cache-dir DIR]
                                               [--output FILE] [--label TEXT]

With ``--cache-dir`` pointing at a persistent directory, the second CI run
demonstrates warm-start: the entry records which phases were served from
cache, so a trajectory regression (warm-up suddenly re-running) is visible
in the JSON diff.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import get_scale  # noqa: E402
from repro.experiments.figure5 import run_figure5  # noqa: E402
from repro.experiments.figure6 import run_figure6  # noqa: E402
from repro.experiments.scionlab import run_scionlab  # noqa: E402
from repro.experiments.table1 import run_table1  # noqa: E402
from repro.experiments.traffic import run_traffic  # noqa: E402
from repro.kernels import BACKEND_NAMES, available_backends  # noqa: E402
from repro.obs import Telemetry, configure_logging, get_reporter  # noqa: E402
from repro.runtime import ExperimentRuntime, default_jobs  # noqa: E402

reporter = get_reporter("repro.tools.bench_smoke")


def host_fingerprint() -> str:
    """Coarse hardware tag so trajectory entries from different machines
    (laptop vs CI runner) are never compared against each other."""
    return f"{platform.machine()}-cpu{os.cpu_count() or 0}"

EXPERIMENTS = {
    "table1": run_table1,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "scionlab": run_scionlab,  # Figures 7, 8 and 9 share this run.
    "traffic": run_traffic,  # End-to-end data-plane workload.
}


def forwarding_summary(result, report) -> dict:
    """Forwarding-throughput record for the traffic experiment: packets
    and MAC verifications performed, and — when the runs actually executed
    rather than being served from cache — packets per second."""
    packets = sum(r.packets_forwarded for r in result.results.values())
    macs = sum(r.macs_verified for r in result.results.values())
    run_seconds = sum(
        phase.seconds
        for phase in report.phases
        if phase.name.endswith(":run") and not phase.cached
    )
    summary = {"packets_forwarded": packets, "macs_verified": macs}
    if run_seconds > 0:
        summary["run_seconds"] = round(run_seconds, 3)
        summary["packets_per_second"] = round(packets / run_seconds, 1)
    return summary


def kernel_benchmarks(repeats: int = 3) -> dict:
    """Per-backend hot-loop throughput at TEST scale.

    For every installed kernel backend (``repro.kernels``) this times the
    two loops the backends own, in isolation from the surrounding engine
    (whose policy/SIG/metrics overhead is backend-independent and already
    covered by the traffic entry): ``deliver_flow`` over an engine-shaped
    forwarding workload — a few dozen unique paths revisited by many
    multi-packet flows, the access pattern that lets the batched backend
    amortize validation — and diversity beaconing through a full
    :class:`~repro.simulation.beaconing.BeaconingSimulation` (intervals
    per second). Each measurement is best-of-``repeats`` on a fresh
    kernel/simulation. The backends are byte-identical by contract; the
    delivered totals are asserted equal before the entry is recorded.
    """
    from repro.control.network import ScionNetwork
    from repro.dataplane import HostAddress, ScionPacket, build_forwarding_path
    from repro.experiments.common import build_full_stack_topology
    from repro.kernels import get_backend
    from repro.simulation.beaconing import (
        BeaconingSimulation,
        diversity_factory,
    )

    scale = get_scale("test")
    topology = build_full_stack_topology(scale, leaves_per_core=2)
    core_config = scale.core_beaconing_config(5)
    network = ScionNetwork(
        topology,
        algorithm="diversity",
        core_config=core_config,
        intra_config=scale.intra_isd_config(5),
    ).run()

    endpoints = sorted(topology.non_core_asns())
    unique_packets = []
    for src in endpoints:
        for dst in endpoints:
            if src == dst or len(unique_packets) >= 40:
                continue
            paths = network.lookup_paths(src, dst)
            if not paths:
                continue
            path = paths[0]
            unique_packets.append(
                ScionPacket(
                    source=HostAddress(1, src),
                    destination=HostAddress(1, dst),
                    path=build_forwarding_path(
                        topology,
                        path.asns,
                        path.link_ids,
                        timestamp=network.now,
                        expiry=path.expires_at,
                    ),
                    payload_bytes=1200,
                )
            )
    flows = unique_packets * 5  # flows revisit paths, as real workloads do
    packets_per_flow = 16

    backends: dict = {}
    for backend in available_backends():
        forward_seconds = []
        delivered_total = 0
        for _ in range(repeats):
            kernel = get_backend(backend)
            delivered_total = 0
            start = time.perf_counter()
            for packet in flows:
                delivered, _ = kernel.deliver_flow(
                    network.router_table,
                    packet,
                    packets_per_flow,
                    now=network.now,
                )
                delivered_total += delivered
            forward_seconds.append(time.perf_counter() - start)

        beacon_seconds = []
        intervals = 0
        for _ in range(repeats):
            sim = BeaconingSimulation(
                topology, diversity_factory(kernel=backend), core_config
            )
            start = time.perf_counter()
            sim.run()
            beacon_seconds.append(time.perf_counter() - start)
            intervals = sim.intervals_run

        best_forward = min(forward_seconds)
        best_beacon = min(beacon_seconds)
        backends[backend] = {
            "packets_delivered": delivered_total,
            "forwarding_seconds": round(best_forward, 4),
            "forwarding_pps": round(delivered_total / best_forward, 1),
            "beaconing_intervals": intervals,
            "beaconing_seconds": round(best_beacon, 4),
            "beaconing_ips": round(intervals / best_beacon, 2),
        }
        reporter.info(
            f"  kernels[{backend}]: "
            f"{backends[backend]['forwarding_pps']:.0f} pkt/s, "
            f"{backends[backend]['beaconing_ips']:.1f} intervals/s"
        )

    # The byte-identical contract, smoke-checked on the bench workload.
    totals = {
        (b["packets_delivered"], b["beaconing_intervals"])
        for b in backends.values()
    }
    if len(totals) > 1:
        raise AssertionError(f"backend outputs diverged: {backends}")

    entry = {"backends": backends}
    if "python" in backends and "numpy" in backends:
        entry["forwarding_speedup"] = round(
            backends["numpy"]["forwarding_pps"]
            / backends["python"]["forwarding_pps"],
            2,
        )
        entry["beaconing_speedup"] = round(
            backends["numpy"]["beaconing_ips"]
            / backends["python"]["beaconing_ips"],
            2,
        )
    return entry


def scenario_compile_benchmark(repeats: int = 3) -> dict:
    """Compile-time record for the declarative scenario compiler.

    Lowers every built-in scenario family at TEST scale — the full
    spec → topology/deployment/overlay pipeline, no simulation runs —
    and records best-of-``repeats`` wall time. Compilation is the fixed
    cost every scenario experiment pays before its first cached phase,
    so a slowdown here lands on every ``scenarios`` invocation.
    """
    from repro.scenario import build_family, compile_scenario, family_names

    specs = [
        spec
        for family in family_names()
        for spec in build_family(family, "test")
    ]
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for spec in specs:
            compile_scenario(spec)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    entry = {
        "variants": len(specs),
        "compile_seconds": round(best, 4),
        "variants_per_second": round(len(specs) / best, 2),
    }
    reporter.info(
        f"  scenario compile: {entry['variants']} variants in "
        f"{entry['compile_seconds']:.2f}s "
        f"({entry['variants_per_second']:.1f}/s)"
    )
    return entry


def run_smoke(
    jobs: int,
    cache_dir: str | None,
    telemetry: Telemetry | None = None,
    backend: str = "python",
) -> dict:
    results = {}
    for name, runner in EXPERIMENTS.items():
        runtime = ExperimentRuntime(
            jobs=jobs, cache=cache_dir, telemetry=telemetry, backend=backend
        )
        start = time.perf_counter()
        result = runner(get_scale("test"), runtime=runtime)
        wall = time.perf_counter() - start
        # Render to prove the output path works; discard the text.
        rendered = result.render()
        assert rendered
        entry = {
            "wall_seconds": round(wall, 3),
            "report": runtime.report.to_dict(),
        }
        if name == "traffic":
            entry["forwarding"] = forwarding_summary(result, runtime.report)
        if runtime.cache is not None:
            entry["cache"] = {
                "hits": runtime.cache.hits,
                "misses": runtime.cache.misses,
            }
        results[name] = entry
        cached = runtime.report.cached_phases()
        served = f", cached: {', '.join(cached)}" if cached else ""
        reporter.info(f"  {name}: {wall:.2f}s{served}")
    return results


def append_trajectory(output: Path, entry: dict) -> None:
    history = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=default_jobs())
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="warm-state cache directory (default: no cache)",
    )
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_smoke.json"),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--label", default="", help="free-form tag stored with the entry"
    )
    parser.add_argument(
        "--backend",
        default="python",
        choices=BACKEND_NAMES,
        help="kernel backend for the experiment runs (repro.kernels)",
    )
    parser.add_argument(
        "--skip-kernels",
        action="store_true",
        help="skip the per-backend kernel microbenchmarks",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="also collect telemetry and write the metrics snapshot here",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="also collect telemetry and write the trace JSONL here",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the sampling profiler (implies telemetry)",
    )
    parser.add_argument("--log-level", default="info")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    if args.backend not in available_backends():
        parser.error(
            f"--backend {args.backend} is not available in this install; "
            "the numpy backend needs the optional numpy extra "
            "(pip install 'repro[numpy]')"
        )

    collect = bool(args.metrics_out or args.trace_out or args.profile)
    telemetry = Telemetry.collecting(profile=args.profile) if collect else None
    reporter.info(
        f"smoke run: scale=test jobs={args.jobs} "
        f"backend={args.backend} cache={args.cache_dir or 'off'}"
        f"{' telemetry=on' if collect else ''}"
    )
    started = time.time()
    results = run_smoke(args.jobs, args.cache_dir, telemetry, args.backend)
    entry = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)
        ),
        "label": args.label,
        "scale": "test",
        "jobs": args.jobs,
        "backend": args.backend,
        "cache": bool(args.cache_dir),
        "telemetry": collect,
        "machine": host_fingerprint(),
        "python": platform.python_version(),
        "total_seconds": round(
            sum(e["wall_seconds"] for e in results.values()), 3
        ),
        "experiments": results,
    }
    if not args.skip_kernels:
        entry["kernels"] = kernel_benchmarks()
    entry["scenario_compile"] = scenario_compile_benchmark()
    append_trajectory(Path(args.output), entry)
    if telemetry is not None:
        if args.metrics_out:
            Path(args.metrics_out).write_text(
                telemetry.metrics.to_json() + "\n"
            )
            reporter.info(f"metrics snapshot -> {args.metrics_out}")
        if args.trace_out:
            count = telemetry.trace.write_jsonl(args.trace_out)
            reporter.info(f"{count} trace events -> {args.trace_out}")
    reporter.info(
        f"total {entry['total_seconds']:.2f}s -> appended to {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
